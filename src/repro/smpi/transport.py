"""Transport selection for simulated-MPI runs: threads or processes.

The original :func:`repro.smpi.run_ranks` executes ranks as threads of
one interpreter — fully deterministic, instrumentable (wait-for-graph
deadlock detection, seeded schedulers, fault plans), but GIL-capped:
no amount of ranks buys real multi-core speedup, so the fig7/fig8
scaling reproductions measured protocol overhead, not parallelism.

This module adds a **process transport**: each rank is an OS process
(``fork``), point-to-point messages travel through one
``multiprocessing.Queue`` per world rank, and numpy payloads at or
above :data:`REPRO_SMPI_SHM_MIN` bytes (env-tunable, default 64 KiB)
ride in ``multiprocessing.shared_memory`` segments instead of being
pickled through the pipe — the classic large-``Dat``-halo fast path.
Control messages (tags, communicator ids, small payloads) stay
pickled.

Semantics parity with the threaded transport:

* value semantics on send (pickling or an explicit shm copy-in/out);
* the MPI non-overtaking guarantee per (src, dst) channel (a single
  FIFO queue per receiver);
* collectives folded in ascending rank order, so floating-point
  reductions are bitwise-identical across transports;
* collective traffic is *not* recorded in the ledger (matching the
  threaded transport's shared-slot collectives, which send nothing);
* per-rank message logs are merged into the caller's
  :class:`~repro.smpi.traffic.Traffic` in ascending rank order, so
  ``Traffic.structure_fingerprint()`` is deterministic and comparable
  across transports.

Fault tolerance (the process transport is a first-class fault
domain):

* :class:`~repro.smpi.faults.FaultPlan` injection works with the
  same semantics the thread transport certifies — each forked rank
  applies its inherited copy of the plan and the fire-once state is
  shipped back to the parent's plan object (in the final report, or a
  pre-death notice for hard crashes), so supervised retries replay
  clean. Message faults must pin ``src`` (matching runs on the
  sending rank); ``crash_hard`` faults SIGKILL the child to model
  real node death.
* Abnormal child death — a killing signal, a nonzero exit, a broken
  result pipe — is surfaced as a typed
  :class:`~repro.smpi.errors.ProcessRankDied` (a
  :class:`~repro.smpi.errors.RankFailure` subclass carrying rank,
  step when attributable, signal and exitcode), never as a bare hang;
  detection is immediate (pipe EOF) and the world is aborted so
  surviving ranks wind down in milliseconds, not watchdog-timeouts.
* An optional per-child heartbeat (``heartbeat_s`` kwarg or
  :data:`HEARTBEAT_ENV`) reports a *wedged* rank — alive but making
  no progress through step boundaries or blocking waits — within the
  heartbeat deadline instead of waiting out the ``2×timeout``
  watchdog. Disabled by default: ranks that legitimately compute for
  long stretches without communicating would be falsely reaped.
* Shared-memory segments are reclaimed on **every** crash path:
  receivers unlink on decode, the parent drains stray queue messages,
  and each run's segments carry a unique name prefix that the parent
  sweeps from ``/dev/shm`` after teardown — a child SIGKILLed between
  segment creation and enqueue still leaks nothing.

Deliberate non-parity (documented, enforced):

* no deterministic scheduler, no wait-for-graph deadlock detector —
  requesting a scheduler with ``transport="process"`` raises
  :class:`~repro.smpi.errors.TransportError`; a genuinely hung
  run is caught by the heartbeat (if enabled) or the watchdog;
* per-rank telemetry recorders are process-local and discarded — the
  traffic ledger is the only cross-process observable.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import pickle
import queue as _queue
import signal as _signal
import threading
import time
import uuid
from collections import defaultdict
from dataclasses import dataclass
from multiprocessing import connection as _mpconn
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.smpi.errors import (
    ProcessRankDied,
    SimAbort,
    SimMPIError,
    TransportError,
)
from repro.smpi.traffic import Traffic, payload_nbytes
from repro.telemetry.recorder import active_recorder

#: Environment variable naming the default transport for
#: :func:`repro.smpi.run_ranks` calls that do not pass one explicitly.
TRANSPORT_ENV = "REPRO_SMPI_TRANSPORT"

#: Environment variable overriding the shared-memory payload threshold
#: (bytes). numpy payloads at least this large travel via
#: ``multiprocessing.shared_memory`` instead of pickle-through-pipe.
SHM_MIN_ENV = "REPRO_SMPI_SHM_MIN"

#: Environment variable overriding the hung-child watchdog deadline
#: (seconds). The watchdog is how long the parent waits for every rank
#: process to report before declaring the stragglers hung; the default
#: is ``2 * timeout``. Long coupled jobs under a loaded machine can
#: legitimately outlive that — a service raises this instead of having
#: healthy children falsely reaped.
WATCHDOG_ENV = "REPRO_SMPI_WATCHDOG_S"

#: Environment variable enabling the per-child heartbeat (seconds).
#: When set (or when ``heartbeat_s`` is passed explicitly), each rank
#: process beats over its result pipe at every step boundary and
#: blocking-wait poll; a rank silent for longer than this deadline is
#: reaped and reported as a typed
#: :class:`~repro.smpi.errors.ProcessRankDied` instead of waiting out
#: the full watchdog. Unset / non-positive = disabled.
HEARTBEAT_ENV = "REPRO_SMPI_HEARTBEAT_S"

_DEFAULT_SHM_MIN = 64 * 1024

#: Transports :func:`resolve_transport` accepts.
TRANSPORTS = ("thread", "process")

#: Poll step (seconds) of blocking waits in the process transport.
_WAIT_STEP = 0.05


def default_transport() -> str:
    """The transport used when ``run_ranks(transport=None)``.

    Reads :data:`TRANSPORT_ENV` (so a CI job or CLI wrapper can flip a
    whole test suite to the process transport without touching call
    sites) and falls back to ``"thread"``.
    """
    return os.environ.get(TRANSPORT_ENV, "thread")


def resolve_transport(name: str | None) -> str:
    """Validate an explicit transport name or resolve the default."""
    resolved = default_transport() if name is None else name
    if resolved not in TRANSPORTS:
        raise TransportError(
            f"unknown smpi transport {resolved!r}; expected one of "
            f"{TRANSPORTS} (explicit or via ${TRANSPORT_ENV})"
        )
    return resolved


def shm_threshold() -> int:
    """Current shared-memory payload threshold in bytes."""
    try:
        return int(os.environ.get(SHM_MIN_ENV, _DEFAULT_SHM_MIN))
    except ValueError:
        return _DEFAULT_SHM_MIN


def watchdog_seconds(timeout: float,
                     watchdog_s: float | None = None) -> float:
    """Resolve the hung-child watchdog deadline for one run.

    Precedence: explicit ``watchdog_s`` kwarg, then the
    :data:`WATCHDOG_ENV` environment variable, then ``2 * timeout``
    (the historical hard-coded factor). Values must be positive;
    unparsable or non-positive settings fall back to the default.
    """
    if watchdog_s is not None and watchdog_s > 0:
        return float(watchdog_s)
    env = os.environ.get(WATCHDOG_ENV)
    if env:
        try:
            value = float(env)
        except ValueError:
            value = 0.0
        if value > 0:
            return value
    return timeout * 2


def heartbeat_seconds(heartbeat_s: float | None = None) -> float | None:
    """Resolve the per-child heartbeat deadline for one run.

    Precedence: explicit ``heartbeat_s`` kwarg, then the
    :data:`HEARTBEAT_ENV` environment variable. ``None`` (the default)
    disables the heartbeat entirely — a rank that computes for minutes
    without communicating must not be falsely reaped. Non-positive or
    unparsable settings also disable it.
    """
    if heartbeat_s is not None:
        return float(heartbeat_s) if heartbeat_s > 0 else None
    env = os.environ.get(HEARTBEAT_ENV)
    if env:
        try:
            value = float(env)
        except ValueError:
            return None
        if value > 0:
            return value
    return None


# ---------------------------------------------------------------------------
# payload encoding: shared-memory hand-off for large numpy buffers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ShmRef:
    """Wire descriptor for an ndarray parked in a shared-memory segment.

    Ownership protocol: the **sender** creates the segment, copies the
    array in, unregisters it from its own resource tracker and closes
    its handle; the **receiver** (or the parent's post-run drain, for
    messages nobody received) attaches, copies out and unlinks. Exactly
    one unlink per segment, no tracker double-accounting.
    """

    name: str
    shape: tuple
    dtype: str
    nbytes: int


# Per-process shared-memory naming. Rank processes stamp every segment
# they create with a run+rank-unique prefix so the parent can sweep
# /dev/shm for leftovers after teardown — the only leak window the
# queue drain cannot cover is a child SIGKILLed between creating a
# segment and enqueueing its ref, and a name sweep closes it.
_SHM_NAME_PREFIX: str | None = None
_SHM_NAME_COUNTER = itertools.count()


def _set_shm_prefix(prefix: str | None) -> None:
    global _SHM_NAME_PREFIX
    _SHM_NAME_PREFIX = prefix


def _next_shm_name() -> str | None:
    """Next segment name under the current prefix (None = OS-chosen)."""
    if _SHM_NAME_PREFIX is None:
        return None
    return f"{_SHM_NAME_PREFIX}{next(_SHM_NAME_COUNTER)}"


def _sweep_shm_prefix(prefix: str) -> int:
    """Unlink every /dev/shm segment carrying this run's name prefix.

    Returns the number of segments reclaimed (0 on clean runs and on
    platforms without a /dev/shm directory).
    """
    root = "/dev/shm"
    swept = 0
    if not prefix or not os.path.isdir(root):  # pragma: no cover - non-Linux
        return 0
    try:
        names = os.listdir(root)
    except OSError:  # pragma: no cover - defensive
        return 0
    for fname in names:
        if not fname.startswith(prefix):
            continue
        try:
            seg = shared_memory.SharedMemory(name=fname)
        except FileNotFoundError:
            continue
        except OSError:  # pragma: no cover - permissions race
            continue
        seg.close()
        try:
            seg.unlink()
            swept += 1
        except FileNotFoundError:  # pragma: no cover - concurrent free
            pass
    return swept


def _encode_payload(obj: Any) -> Any:
    """Replace large simple-dtype ndarrays with shared-memory refs."""
    if isinstance(obj, np.ndarray):
        if (obj.nbytes >= shm_threshold() and obj.nbytes > 0
                and not obj.dtype.hasobject):
            arr = np.ascontiguousarray(obj)
            shm = shared_memory.SharedMemory(create=True, size=arr.nbytes,
                                             name=_next_shm_name())
            try:
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                # the receiver unlinks; keep the creator's tracker out of
                # it so nothing is double-freed at interpreter exit
                resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
                return _ShmRef(shm.name, arr.shape, arr.dtype.str,
                               int(arr.nbytes))
            finally:
                shm.close()
        return obj
    if isinstance(obj, tuple):
        return tuple(_encode_payload(o) for o in obj)
    if isinstance(obj, list):
        return [_encode_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _encode_payload(v) for k, v in obj.items()}
    return obj


def _decode_payload(obj: Any) -> Any:
    """Materialize shared-memory refs back into owned ndarrays."""
    if isinstance(obj, _ShmRef):
        shm = shared_memory.SharedMemory(name=obj.name)
        try:
            src = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                             buffer=shm.buf)
            return src.copy()
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already freed
                pass
    if isinstance(obj, tuple):
        return tuple(_decode_payload(o) for o in obj)
    if isinstance(obj, list):
        return [_decode_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _decode_payload(v) for k, v in obj.items()}
    return obj


def _release_payload(obj: Any) -> None:
    """Unlink shm segments of a message nobody will ever decode."""
    if isinstance(obj, _ShmRef):
        try:
            shm = shared_memory.SharedMemory(name=obj.name)
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already freed
            pass
        return
    if isinstance(obj, (tuple, list)):
        for o in obj:
            _release_payload(o)
    elif isinstance(obj, dict):
        for o in obj.values():
            _release_payload(o)


# ---------------------------------------------------------------------------
# the process-backed communicator
# ---------------------------------------------------------------------------

class _ProcRuntime:
    """Per-process plumbing shared by every communicator view.

    One instance per rank process: the world-indexed queue array, the
    run-wide abort event, the rank's private traffic ledger and the
    per-communicator buffers of received-but-unmatched messages (all
    communicators multiplex over the single per-rank queue, so a recv
    on one communicator may pull in messages for another).

    The queue/event objects only need ``put``/``get``/``get_nowait``
    and ``is_set``, so tests can instantiate the runtime over plain
    ``queue.Queue``/``threading.Event`` to exercise the matching logic
    in-process.
    """

    def __init__(self, world_rank: int, world_size: int,
                 queues: Sequence[Any], abort: Any, timeout: float,
                 traffic: Traffic, faults: Any = None,
                 beat: Callable[[], None] | None = None) -> None:
        self.world_rank = world_rank
        self.world_size = world_size
        self.queues = list(queues)
        self.abort = abort
        self.timeout = timeout
        self.traffic = traffic
        #: this rank's inherited copy of the run's FaultPlan (or None);
        #: applied at step boundaries and on the send path, exactly as
        #: the threaded SimComm does
        self.faults = faults
        #: liveness hook called at step boundaries and blocking-wait
        #: polls; throttled by the reporter, no-op when heartbeats are
        #: disabled
        self.maybe_beat: Callable[[], None] = beat if beat is not None \
            else (lambda: None)
        #: comm_id -> [(kind, src_world, tag, payload)]
        self.buffers: dict[str, list[tuple[str, int, int, Any]]] = \
            defaultdict(list)

    def pump(self, block: float = 0.0) -> bool:
        """Move at most one wire message into its communicator buffer."""
        q = self.queues[self.world_rank]
        try:
            item = q.get(timeout=block) if block > 0 else q.get_nowait()
        except _queue.Empty:
            return False
        comm_id, kind, src_world, tag, enc = item
        self.buffers[comm_id].append(
            (kind, src_world, tag, _decode_payload(enc)))
        return True

    def post(self, dst_world: int, comm_id: str, kind: str, tag: int,
             obj: Any) -> None:
        self.queues[dst_world].put(
            (comm_id, kind, self.world_rank, tag, _encode_payload(obj)))


# sentinel source/tag shared with the threaded transport
ANY_SOURCE = -1
ANY_TAG = -1


class ProcessComm:
    """One rank's view of a communicator over the process transport.

    API-compatible with :class:`repro.smpi.comm.SimComm`: the whole
    op2/coupler stack runs unchanged on either. Collectives are built
    from point-to-point messages tagged with a per-communicator
    sequence counter — every member calls collectives in the same
    program order, so the counters advance in lockstep and the tags
    match without negotiation. Sub-communicators from :meth:`split`
    are deterministic ``comm_id`` namespaces over the same per-rank
    queues; no new OS resources are created after fork.
    """

    def __init__(self, runtime: _ProcRuntime, comm_id: str,
                 ranks_world: Sequence[int], rank: int) -> None:
        self._rt = runtime
        self.comm_id = comm_id
        self._ranks_world = list(ranks_world)
        self._world_to_local = {w: r for r, w in enumerate(self._ranks_world)}
        self.rank = rank
        self._seq = 0
        self._split_gen = 0

    # -- introspection -------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._ranks_world)

    @property
    def traffic(self) -> Traffic:
        return self._rt.traffic

    @property
    def world_rank(self) -> int:
        return self._ranks_world[self.rank]

    def set_phase(self, phase: str) -> None:
        self._rt.traffic.set_phase(self.world_rank, phase)

    def notify_step(self, step: int) -> None:
        """Apply step-boundary faults and beat the liveness heartbeat.

        Same contract as :meth:`repro.smpi.comm.SimComm.notify_step`:
        a :class:`~repro.smpi.faults.FaultPlan` crash scheduled for
        ``(rank, step)`` fires here — a soft crash raises the typed
        :class:`~repro.smpi.errors.RankFailure` inside this rank's
        process, a hard crash SIGKILLs it after a pre-death notice.
        """
        self._rt.maybe_beat()
        plan = self._rt.faults
        if plan is not None:
            plan.on_step(self.world_rank, step)

    # -- point to point ------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise SimMPIError(f"send dest {dest} out of range [0, {self.size})")
        dst_world = self._ranks_world[dest]
        self._rt.traffic.record(self.world_rank, dst_world,
                                payload_nbytes(obj))
        plan = self._rt.faults
        if plan is None:
            self._rt.post(dst_world, self.comm_id, "p2p", tag, obj)
            return
        # message-fault path: identical order to SimComm._send_with_faults
        # (record above, then corrupt -> hold -> deliver -> release held).
        # Matching runs on the sending rank, so fire-once counts are
        # per-process — validate_for_transport() already forced src to
        # be pinned, making that indistinguishable from thread runs.
        actions = plan.on_send(self.world_rank, dst_world, tag)
        if actions.corrupt is not None:
            from repro.smpi.comm import _copy_payload
            # copy first: unlike the threaded transport there is no
            # later copy-on-send, and the sender must not see its own
            # buffer corrupted
            obj = actions.corrupt(_copy_payload(obj))
        if actions.hold:
            rt, comm_id, me = self._rt, self.comm_id, self.world_rank
            held = obj
            plan.hold_message(
                me, dst_world,
                lambda: rt.post(dst_world, comm_id, "p2p", tag, held))
            return
        for _ in range(actions.deliver):
            self._rt.post(dst_world, self.comm_id, "p2p", tag, obj)
        plan.release_held(self.world_rank, dst_world)

    def _recv_raw(self, kind: str, source_world: int, tag: int,
                  timeout: float) -> tuple[int, int, Any]:
        """Blocking matched receive; returns (src_world, tag, payload)."""
        rt = self._rt
        deadline = float("inf") if timeout is None else timeout
        waited = 0.0
        while True:
            rt.maybe_beat()
            buf = rt.buffers[self.comm_id]
            for i, (k, s, t, _p) in enumerate(buf):
                if k != kind:
                    continue
                if source_world not in (ANY_SOURCE, s):
                    continue
                if tag not in (ANY_TAG, t):
                    continue
                _k, s, t, p = buf.pop(i)
                return s, t, p
            if rt.abort.is_set():
                raise SimAbort("run aborted by another rank")
            if waited >= deadline:
                raise SimMPIError(
                    f"recv(source={source_world}, tag={tag}) timed out after "
                    f"{deadline:.1f}s — deadlock? (process transport has no "
                    f"wait-for-graph detector)"
                )
            step = min(_WAIT_STEP, deadline - waited)
            if not rt.pump(block=step):
                waited += step

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: float | None = None) -> Any:
        timeout = self._rt.timeout if timeout is None else timeout
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._ranks_world[source])
        _s, _t, payload = self._recv_raw("p2p", src_world, tag, timeout)
        return payload

    def recv_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                    timeout: float | None = None) -> tuple[Any, int, int]:
        timeout = self._rt.timeout if timeout is None else timeout
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._ranks_world[source])
        s, t, payload = self._recv_raw("p2p", src_world, tag, timeout)
        return payload, self._world_to_local[s], t

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Request":
        self.send(obj, dest, tag)
        from repro.smpi.comm import Request
        return Request(_done=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Request":
        from repro.smpi.comm import Request
        return Request(_resolve=lambda: self.recv(source, tag))

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        while self._rt.pump():
            pass
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._ranks_world[source])
        for k, s, t, _p in self._rt.buffers[self.comm_id]:
            if k != "p2p":
                continue
            if src_world in (ANY_SOURCE, s) and tag in (ANY_TAG, t):
                return True
        return False

    def sendrecv(self, obj: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives ---------------------------------------------------
    # Built from p2p messages with kind="coll" so user tags can never
    # collide. Collective wire traffic is NOT recorded in the ledger,
    # matching the threaded transport's shared-slot collectives.

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _csend(self, obj: Any, dest: int, ctag: int) -> None:
        self._rt.post(self._ranks_world[dest], self.comm_id, "coll",
                      ctag, obj)

    def _crecv(self, source: int, ctag: int) -> Any:
        _s, _t, payload = self._recv_raw(
            "coll", self._ranks_world[source], ctag, self._rt.timeout)
        return payload

    def _gather0(self, obj: Any, seq: int) -> list[Any] | None:
        """Fan-in to rank 0, receives folded in ascending rank order."""
        if self.rank == 0:
            from repro.smpi.comm import _copy_payload
            slots = [_copy_payload(obj)]
            slots.extend(self._crecv(r, seq) for r in range(1, self.size))
            return slots
        self._csend(obj, 0, seq)
        return None

    def _bcast0(self, value: Any, seq: int) -> Any:
        if self.rank == 0:
            from repro.smpi.comm import _copy_payload
            for r in range(1, self.size):
                self._csend(value, r, seq)
            return _copy_payload(value)
        return self._crecv(0, seq)

    def barrier(self) -> None:
        seq = self._next_seq()
        self._gather0(None, seq)
        self._bcast0(None, seq)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        seq = self._next_seq()
        if self.rank == root:
            from repro.smpi.comm import _copy_payload
            for r in range(self.size):
                if r != root:
                    self._csend(obj, r, seq)
            return _copy_payload(obj)
        return self._crecv(root, seq)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        seq = self._next_seq()
        if self.rank == root:
            from repro.smpi.comm import _copy_payload
            return [_copy_payload(obj) if r == root else self._crecv(r, seq)
                    for r in range(self.size)]
        self._csend(obj, root, seq)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        seq = self._next_seq()
        slots = self._gather0(obj, seq)
        return self._bcast0(slots, seq)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        seq = self._next_seq()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise SimMPIError(
                    f"scatter root must supply {self.size} items, got "
                    f"{None if objs is None else len(objs)}"
                )
            from repro.smpi.comm import _copy_payload
            for r in range(self.size):
                if r != root:
                    self._csend(objs[r], r, seq)
            return _copy_payload(objs[root])
        return self._crecv(root, seq)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] | str = "sum",
               root: int = 0) -> Any | None:
        result = self.allreduce(obj, op)
        return result if self.rank == root else None

    def allreduce(self, obj: Any,
                  op: Callable[[Any, Any], Any] | str = "sum") -> Any:
        from repro.smpi.comm import _REDUCE_OPS
        if isinstance(op, str) and op not in _REDUCE_OPS:
            raise SimMPIError(
                f"unknown reduce op {op!r}; use one of {sorted(_REDUCE_OPS)}")
        fn = _REDUCE_OPS[op] if isinstance(op, str) else op
        seq = self._next_seq()
        slots = self._gather0(obj, seq)
        if self.rank == 0:
            # fold in ascending rank order — bitwise-identical to the
            # threaded transport's slot fold
            acc = slots[0]
            for other in slots[1:]:
                acc = fn(acc, other)
            return self._bcast0(acc, seq)
        return self._bcast0(None, seq)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise SimMPIError(
                f"alltoall needs {self.size} items, got {len(objs)}")
        from repro.smpi.comm import _copy_payload
        seq = self._next_seq()
        for r in range(self.size):
            if r != self.rank:
                self._csend(objs[r], r, seq)
        return [_copy_payload(objs[r]) if r == self.rank
                else self._crecv(r, seq) for r in range(self.size)]

    # -- communicator management ---------------------------------------
    def split(self, color: int, key: int | None = None) -> "ProcessComm | None":
        """Partition by ``color``; deterministic comm ids on all ranks.

        Every member computes the same grouping from the same
        allgathered ``(color, key, rank)`` triples, so the derived
        ``comm_id`` — ``"{parent}/{gen}.{color}"`` — agrees everywhere
        without a coordinator.
        """
        key = self.rank if key is None else key
        pairs = self.allgather((color, key, self.rank))
        self._split_gen += 1
        if color < 0:
            return None
        members = sorted((k, r) for c, k, r in pairs if c == color)
        ranks = [r for _k, r in members]
        sub_id = f"{self.comm_id}/{self._split_gen}.{color}"
        return ProcessComm(self._rt, sub_id,
                           [self._ranks_world[r] for r in ranks],
                           ranks.index(self.rank))


# ---------------------------------------------------------------------------
# process lifecycle
# ---------------------------------------------------------------------------

class _ChildReporter:
    """Serialized writer for a child's result pipe.

    The pipe now carries framed messages — ``("hb",)`` heartbeats,
    ``("fault", notice)`` pre-death notices and the final report tuple
    — and the hard-crash handler may fire from the thick of a step, so
    every write goes through one lock and swallows a vanished parent.
    """

    def __init__(self, conn: Any, heartbeat: float | None) -> None:
        self._conn = conn
        self._lock = threading.Lock()
        # beat at ~3x the deadline rate so one lost poll window can
        # never look like silence
        self._interval = heartbeat / 3.0 if heartbeat else None
        self._last = 0.0

    def send(self, frame: Any) -> None:
        self.send_bytes(pickle.dumps(frame))

    def send_bytes(self, blob: bytes) -> None:
        with self._lock:
            try:
                self._conn.send_bytes(blob)
            except Exception:  # pragma: no cover - parent already gone
                pass

    def maybe_beat(self) -> None:
        """Beat if heartbeats are on and the interval elapsed."""
        if self._interval is None:
            return
        now = time.monotonic()
        if now - self._last >= self._interval:
            self._last = now
            self.send(("hb",))


def _child_main(rank: int, nranks: int, fn: Callable[..., Any], args: tuple,
                queues: Sequence[Any], conn: Any, abort: Any, done: Any,
                timeout: float, fault_plan: Any = None,
                heartbeat: float | None = None,
                shm_prefix: str | None = None) -> None:
    """Rank body: run ``fn``, report over the pipe, wait, hard-exit.

    The explicit ``os._exit`` (after the parent signals ``done``)
    skips inherited atexit handlers and queue-feeder joins that would
    otherwise deadlock a fork child; ``done`` guarantees every queue
    message this rank produced has either been consumed by a peer or
    drained by the parent before the feeder threads are cancelled.

    The final report is a 4-tuple ``(status, payload, message_log,
    fault_state)`` — the last element ships this child's fire-once
    fault-plan delta back to the parent (None when no plan is
    installed). A matched ``crash_hard`` never reaches the report: the
    bound handler sends a ``("fault", notice)`` frame and SIGKILLs the
    process, so the parent sees the notice followed by pipe EOF.
    """
    if shm_prefix:
        _set_shm_prefix(f"{shm_prefix}r{rank}x")
    reporter = _ChildReporter(conn, heartbeat)
    traffic = Traffic()
    if fault_plan is not None:
        # the fork gave this child its own copy-on-write plan; record
        # firings separately so the parent merges only this child's
        # delta, and bind the hard-crash handler to this process
        fault_plan.begin_local_record()

        def _die_hard(crash_rank: int, step: int) -> None:
            reporter.send(("fault", {
                "rank": crash_rank, "step": step,
                "state": fault_plan.snapshot_state(),
            }))
            for q in queues:
                q.cancel_join_thread()
            os.kill(os.getpid(), _signal.SIGKILL)
            os._exit(1)  # pragma: no cover - unreachable backstop

        fault_plan.bind_hard_crash(_die_hard)
    runtime = _ProcRuntime(rank, nranks, queues, abort, timeout, traffic,
                           faults=fault_plan, beat=reporter.maybe_beat)
    comm = ProcessComm(runtime, "world", list(range(nranks)), rank)
    reporter.maybe_beat()  # mark liveness before any compute
    status: str
    payload: Any
    try:
        payload = fn(comm, *args)
        status = "ok"
    except SimAbort:
        status, payload = "abort", None
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        abort.set()
        status, payload = "err", exc
    fault_state = (fault_plan.snapshot_state()
                   if fault_plan is not None else None)
    report = (status, payload, traffic.message_log(), fault_state)
    try:
        blob = pickle.dumps(report)
    except Exception as exc:  # result/exception not picklable
        fallback = ("err",
                    SimMPIError(f"rank {rank} result not picklable: {exc!r}"),
                    traffic.message_log(), fault_state)
        blob = pickle.dumps(fallback)
    reporter.send_bytes(blob)
    done.wait(timeout=max(timeout, 30.0))
    for q in queues:
        q.cancel_join_thread()
    os._exit(0)


def _drain_queues(queues: Sequence[Any]) -> None:
    """Empty every rank queue, unlinking stray shared-memory segments."""
    empty_passes = 0
    while empty_passes < 2:
        got = False
        for q in queues:
            while True:
                try:
                    item = q.get_nowait()
                except _queue.Empty:
                    break
                except (OSError, ValueError):  # pragma: no cover - closed
                    break
                got = True
                _release_payload(item[4])
        if got:
            empty_passes = 0
        else:
            empty_passes += 1
            time.sleep(0.01)


def _signal_name(signum: int | None) -> str:
    if signum is None:
        return ""
    try:
        return _signal.Signals(signum).name
    except ValueError:  # pragma: no cover - unnamed signal
        return f"signal {signum}"


def run_ranks_process(nranks: int, fn: Callable[..., Any], args: tuple = (),
                      timeout: float = 120.0,
                      traffic: Traffic | None = None,
                      watchdog_s: float | None = None,
                      fault_plan: Any = None,
                      heartbeat_s: float | None = None) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``nranks`` forked OS processes.

    The process-transport twin of :func:`repro.smpi.comm.run_ranks`:
    same call shape, same return contract (per-rank results in rank
    order; the lowest-failing-rank exception re-raised on failure),
    but ranks execute with true multi-core parallelism. ``fork`` is
    required — test suites pass closures over mesh data, which spawn
    could not pickle — so this transport is POSIX-only.

    ``watchdog_s`` bounds how long the parent waits for all ranks to
    report before declaring the stragglers hung (default
    ``$REPRO_SMPI_WATCHDOG_S``, else ``2 * timeout``); see
    :func:`watchdog_seconds`.

    ``fault_plan`` installs a :class:`~repro.smpi.faults.FaultPlan`:
    each forked rank applies its inherited copy at step boundaries and
    on the send path, and the fire-once deltas are merged back into
    the caller's plan object (one merge per child, ascending rank
    order) so supervised retries replay clean. Plans are validated up
    front (:meth:`~repro.smpi.faults.FaultPlan.validate_for_transport`).

    ``heartbeat_s`` enables the per-child liveness heartbeat (default
    ``$REPRO_SMPI_HEARTBEAT_S``, else disabled); a rank silent past
    the deadline is killed and reported as
    :class:`~repro.smpi.errors.ProcessRankDied` with
    ``reason="heartbeat"``. Abnormal child death (SIGKILL, nonzero
    exit, broken pipe) is detected immediately via pipe EOF, aborts
    the surviving ranks and raises ``ProcessRankDied`` naming rank,
    signal and exit code.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only guard
        raise TransportError("process transport requires fork()")
    if fault_plan is not None:
        fault_plan.validate_for_transport("process")
    heartbeat = heartbeat_seconds(heartbeat_s)
    out_traffic = traffic if traffic is not None else Traffic()
    ctx = mp.get_context("fork")
    # start the shm resource tracker before forking so children inherit
    # a live tracker instead of racing to spawn their own
    resource_tracker.ensure_running()
    # run-unique shm name prefix: children stamp their segments with it
    # so the post-run sweep can reclaim anything a killed child created
    # but never enqueued
    shm_prefix = f"psmpi{os.getpid()}x{uuid.uuid4().hex[:8]}"
    queues = [ctx.Queue() for _ in range(nranks)]
    pipes = [ctx.Pipe(duplex=False) for _ in range(nranks)]
    abort = ctx.Event()
    done = ctx.Event()
    procs = [
        ctx.Process(target=_child_main,
                    args=(r, nranks, fn, args, queues, pipes[r][1], abort,
                          done, timeout, fault_plan, heartbeat, shm_prefix),
                    name=f"smpi-proc-{r}", daemon=True)
        for r in range(nranks)
    ]
    reports: list[tuple | None] = [None] * nranks
    #: rank -> pre-death ("fault") notice payload, for crash_hard
    death_notices: dict[int, dict] = {}
    #: ranks whose fault-state delta was already folded into the plan
    merged_ranks: set[int] = set()
    heartbeat_frames = 0
    wedged_ranks: set[int] = set()
    died_ranks: set[int] = set()

    def _merge_fault_state(r: int, state: Any) -> None:
        if fault_plan is not None and state and r not in merged_ranks:
            merged_ranks.add(r)
            fault_plan.merge_state(state)

    try:
        for p in procs:
            p.start()
        for _parent, child in pipes:
            child.close()
        conn_rank = {pipes[r][0]: r for r in range(nranks)}
        sentinel_rank = {procs[r].sentinel: r for r in range(nranks)}
        pending = set(range(nranks))
        watchdog = watchdog_seconds(timeout, watchdog_s)
        start = time.monotonic()
        deadline = start + watchdog
        last_beat = {r: start for r in range(nranks)}
        # grace between "went silent" and the kill: long enough for a
        # wedged-but-aborted rank to report SimAbort, short enough that
        # the typed error still lands well inside the deadline
        hb_grace = min(2.0, heartbeat) if heartbeat is not None else 0.0

        def _read_frame(r: int, conn: Any, now: float) -> bool:
            """Read one frame off rank ``r``'s pipe; False on EOF."""
            nonlocal heartbeat_frames
            try:
                frame = pickle.loads(conn.recv_bytes())
            except (EOFError, OSError):
                return False
            if frame[0] == "hb":
                last_beat[r] = now
                heartbeat_frames += 1
            elif frame[0] == "fault":
                # pre-death notice from a crash_hard about to SIGKILL;
                # the sentinel fires right after
                death_notices[r] = frame[1]
                _merge_fault_state(r, frame[1].get("state"))
                last_beat[r] = now
            else:
                reports[r] = frame
                pending.discard(r)
                if len(frame) >= 4:
                    _merge_fault_state(r, frame[3])
            return True

        def _mark_died(r: int) -> None:
            """Rank ``r``'s process is gone with no final report.

            Drain any frames it flushed before dying (a crash_hard
            notice, trailing heartbeats); if that still yields no
            final report, record the abnormal death and abort the
            survivors immediately — they must not block until the
            watchdog on a peer that no longer exists.
            """
            conn = pipes[r][0]
            now = time.monotonic()
            while r in pending and conn.poll(0):
                if not _read_frame(r, conn, now):
                    break
            if r in pending:
                died_ranks.add(r)
                reports[r] = None
                pending.discard(r)
                abort.set()

        def _pump_frames(until: float) -> None:
            """Read frames until the deadline or all ranks reported.

            Waits on each pending rank's result pipe *and* its process
            sentinel: pipe EOF alone cannot signal death, because
            every fork child inherits every pipe's write end, so a
            SIGKILLed rank's pipe stays open in its siblings.
            """
            while pending and time.monotonic() < until:
                wait_t = min(0.2, max(0.0, until - time.monotonic()))
                if heartbeat is not None:
                    wait_t = min(wait_t, heartbeat / 4.0)
                ready = _mpconn.wait(
                    [pipes[r][0] for r in pending]
                    + [procs[r].sentinel for r in pending],
                    timeout=wait_t)
                now = time.monotonic()
                dead_now: list[int] = []
                for obj in ready:
                    r = conn_rank.get(obj)
                    if r is None:
                        dead_now.append(sentinel_rank[obj])
                        continue
                    if r in pending and not _read_frame(r, pipes[r][0], now):
                        dead_now.append(r)
                for r in sorted(set(dead_now)):
                    if r in pending:
                        _mark_died(r)
                if heartbeat is not None:
                    now = time.monotonic()
                    for r in sorted(pending):
                        silent = now - last_beat[r]
                        if silent <= heartbeat:
                            continue
                        # first offense: wake it (a blocked rank reports
                        # SimAbort within one poll step) ...
                        abort.set()
                        if silent <= heartbeat + hb_grace:
                            continue
                        # ... still silent past the grace: wedged; kill
                        # it so the run fails typed instead of hanging
                        if procs[r].is_alive():
                            procs[r].kill()
                        wedged_ranks.add(r)
                        reports[r] = None
                        pending.discard(r)

        _pump_frames(deadline)
        if pending:
            # watchdog expired: wake blocked ranks, give them a short
            # grace to report SimAbort, then declare them hung
            abort.set()
            _pump_frames(time.monotonic() + 5.0)
            for r in pending:
                reports[r] = ("hung", None, [], None)
            pending.clear()
        _drain_queues(queues)
        done.set()
        for p in procs:
            p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=5.0)
    finally:
        done.set()
        for p in procs:
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
        for q in queues:
            q.close()
        for parent, _child in pipes:
            parent.close()
        for p in procs:
            if p.pid is not None:  # never-started procs cannot be joined
                p.join(timeout=5.0)
        # last-resort shm reclamation: segments created by a killed
        # child that never made it into a queue (the drain can't see
        # those) still carry this run's name prefix
        swept = _sweep_shm_prefix(shm_prefix)

    rec = active_recorder()
    if rec is not None:
        if heartbeat_frames:
            rec.counter("smpi.process.heartbeats", heartbeat_frames)
        if wedged_ranks:
            rec.counter("smpi.process.heartbeat_reaped", len(wedged_ranks))
        if died_ranks:
            rec.counter("smpi.process.died", len(died_ranks))
        if swept:
            rec.counter("smpi.process.shm_swept", swept)

    # merge per-rank logs in ascending rank order: the canonical
    # sender-ordered schedule, deterministic run to run
    for report in reports:
        if report is not None:
            out_traffic.merge_log(report[2])

    failures: list[tuple[int, BaseException]] = []
    for r, report in enumerate(reports):
        if r in wedged_ranks:
            failures.append((r, ProcessRankDied(
                f"rank {r} sent no heartbeat for more than "
                f"{heartbeat:.1f}s (${HEARTBEAT_ENV} / heartbeat_s) and "
                f"was killed — wedged rank", rank=r, signal=None,
                exitcode=procs[r].exitcode, reason="heartbeat")))
            continue
        status = report[0] if report is not None else "died"
        if status == "err":
            failures.append((r, report[1]))
        elif status == "died":
            code = procs[r].exitcode
            signum = -code if (code is not None and code < 0) else None
            notice = death_notices.get(r)
            if notice is not None:
                failures.append((r, ProcessRankDied(
                    f"rank {r} process killed by injected crash_hard at "
                    f"step {notice.get('step')}"
                    + (f" ({_signal_name(signum)})" if signum else ""),
                    rank=r, step=notice.get("step"), signal=signum,
                    exitcode=code, reason="exit")))
            else:
                detail = (f"killed by {_signal_name(signum)}" if signum
                          else f"exitcode {code}")
                failures.append((r, ProcessRankDied(
                    f"rank {r} process died without reporting ({detail})",
                    rank=r, signal=signum, exitcode=code, reason="exit")))
        elif status == "hung":
            failures.append((r, ProcessRankDied(
                f"rank {r} failed to terminate within the {watchdog:.1f}s "
                f"watchdog (${WATCHDOG_ENV} / watchdog_s) — deadlock? "
                f"(process transport has no wait-for-graph detector)",
                rank=r, exitcode=procs[r].exitcode, reason="watchdog")))
    if failures:
        # abnormal deaths are the root cause — a peer's secondary
        # timeout must not shadow them; then lowest rank first, as on
        # the thread transport
        failures.sort(key=lambda pair: (
            0 if (pair[0] in died_ranks or pair[0] in wedged_ranks) else 1,
            pair[0]))
        raise failures[0][1]
    if any(report is not None and report[0] == "abort" for report in reports):
        # every rank either aborted or succeeded, yet nobody reported
        # the original error (e.g. it died unpicklably)
        raise SimMPIError("run aborted but no rank reported a failure")
    return [report[1] for report in reports]  # type: ignore[index]
