"""Transport selection for simulated-MPI runs: threads or processes.

The original :func:`repro.smpi.run_ranks` executes ranks as threads of
one interpreter — fully deterministic, instrumentable (wait-for-graph
deadlock detection, seeded schedulers, fault plans), but GIL-capped:
no amount of ranks buys real multi-core speedup, so the fig7/fig8
scaling reproductions measured protocol overhead, not parallelism.

This module adds a **process transport**: each rank is an OS process
(``fork``), point-to-point messages travel through one
``multiprocessing.Queue`` per world rank, and numpy payloads at or
above :data:`REPRO_SMPI_SHM_MIN` bytes (env-tunable, default 64 KiB)
ride in ``multiprocessing.shared_memory`` segments instead of being
pickled through the pipe — the classic large-``Dat``-halo fast path.
Control messages (tags, communicator ids, small payloads) stay
pickled.

Semantics parity with the threaded transport:

* value semantics on send (pickling or an explicit shm copy-in/out);
* the MPI non-overtaking guarantee per (src, dst) channel (a single
  FIFO queue per receiver);
* collectives folded in ascending rank order, so floating-point
  reductions are bitwise-identical across transports;
* collective traffic is *not* recorded in the ledger (matching the
  threaded transport's shared-slot collectives, which send nothing);
* per-rank message logs are merged into the caller's
  :class:`~repro.smpi.traffic.Traffic` in ascending rank order, so
  ``Traffic.structure_fingerprint()`` is deterministic and comparable
  across transports.

Deliberate non-parity (documented, enforced):

* no deterministic scheduler, no fault plan, no wait-for-graph
  deadlock detector — requesting them with ``transport="process"``
  raises :class:`~repro.smpi.errors.TransportError`; a genuinely hung
  run is caught by the watchdog deadline only;
* per-rank telemetry recorders are process-local and discarded — the
  traffic ledger is the only cross-process observable.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as _queue
import time
from collections import defaultdict
from dataclasses import dataclass
from multiprocessing import connection as _mpconn
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.smpi.errors import SimAbort, SimMPIError, TransportError
from repro.smpi.traffic import Traffic, payload_nbytes

#: Environment variable naming the default transport for
#: :func:`repro.smpi.run_ranks` calls that do not pass one explicitly.
TRANSPORT_ENV = "REPRO_SMPI_TRANSPORT"

#: Environment variable overriding the shared-memory payload threshold
#: (bytes). numpy payloads at least this large travel via
#: ``multiprocessing.shared_memory`` instead of pickle-through-pipe.
SHM_MIN_ENV = "REPRO_SMPI_SHM_MIN"

#: Environment variable overriding the hung-child watchdog deadline
#: (seconds). The watchdog is how long the parent waits for every rank
#: process to report before declaring the stragglers hung; the default
#: is ``2 * timeout``. Long coupled jobs under a loaded machine can
#: legitimately outlive that — a service raises this instead of having
#: healthy children falsely reaped.
WATCHDOG_ENV = "REPRO_SMPI_WATCHDOG_S"

_DEFAULT_SHM_MIN = 64 * 1024

#: Transports :func:`resolve_transport` accepts.
TRANSPORTS = ("thread", "process")

#: Poll step (seconds) of blocking waits in the process transport.
_WAIT_STEP = 0.05


def default_transport() -> str:
    """The transport used when ``run_ranks(transport=None)``.

    Reads :data:`TRANSPORT_ENV` (so a CI job or CLI wrapper can flip a
    whole test suite to the process transport without touching call
    sites) and falls back to ``"thread"``.
    """
    return os.environ.get(TRANSPORT_ENV, "thread")


def resolve_transport(name: str | None) -> str:
    """Validate an explicit transport name or resolve the default."""
    resolved = default_transport() if name is None else name
    if resolved not in TRANSPORTS:
        raise TransportError(
            f"unknown smpi transport {resolved!r}; expected one of "
            f"{TRANSPORTS} (explicit or via ${TRANSPORT_ENV})"
        )
    return resolved


def shm_threshold() -> int:
    """Current shared-memory payload threshold in bytes."""
    try:
        return int(os.environ.get(SHM_MIN_ENV, _DEFAULT_SHM_MIN))
    except ValueError:
        return _DEFAULT_SHM_MIN


def watchdog_seconds(timeout: float,
                     watchdog_s: float | None = None) -> float:
    """Resolve the hung-child watchdog deadline for one run.

    Precedence: explicit ``watchdog_s`` kwarg, then the
    :data:`WATCHDOG_ENV` environment variable, then ``2 * timeout``
    (the historical hard-coded factor). Values must be positive;
    unparsable or non-positive settings fall back to the default.
    """
    if watchdog_s is not None and watchdog_s > 0:
        return float(watchdog_s)
    env = os.environ.get(WATCHDOG_ENV)
    if env:
        try:
            value = float(env)
        except ValueError:
            value = 0.0
        if value > 0:
            return value
    return timeout * 2


# ---------------------------------------------------------------------------
# payload encoding: shared-memory hand-off for large numpy buffers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ShmRef:
    """Wire descriptor for an ndarray parked in a shared-memory segment.

    Ownership protocol: the **sender** creates the segment, copies the
    array in, unregisters it from its own resource tracker and closes
    its handle; the **receiver** (or the parent's post-run drain, for
    messages nobody received) attaches, copies out and unlinks. Exactly
    one unlink per segment, no tracker double-accounting.
    """

    name: str
    shape: tuple
    dtype: str
    nbytes: int


def _encode_payload(obj: Any) -> Any:
    """Replace large simple-dtype ndarrays with shared-memory refs."""
    if isinstance(obj, np.ndarray):
        if (obj.nbytes >= shm_threshold() and obj.nbytes > 0
                and not obj.dtype.hasobject):
            arr = np.ascontiguousarray(obj)
            shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
            try:
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                # the receiver unlinks; keep the creator's tracker out of
                # it so nothing is double-freed at interpreter exit
                resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
                return _ShmRef(shm.name, arr.shape, arr.dtype.str,
                               int(arr.nbytes))
            finally:
                shm.close()
        return obj
    if isinstance(obj, tuple):
        return tuple(_encode_payload(o) for o in obj)
    if isinstance(obj, list):
        return [_encode_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _encode_payload(v) for k, v in obj.items()}
    return obj


def _decode_payload(obj: Any) -> Any:
    """Materialize shared-memory refs back into owned ndarrays."""
    if isinstance(obj, _ShmRef):
        shm = shared_memory.SharedMemory(name=obj.name)
        try:
            src = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                             buffer=shm.buf)
            return src.copy()
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already freed
                pass
    if isinstance(obj, tuple):
        return tuple(_decode_payload(o) for o in obj)
    if isinstance(obj, list):
        return [_decode_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _decode_payload(v) for k, v in obj.items()}
    return obj


def _release_payload(obj: Any) -> None:
    """Unlink shm segments of a message nobody will ever decode."""
    if isinstance(obj, _ShmRef):
        try:
            shm = shared_memory.SharedMemory(name=obj.name)
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already freed
            pass
        return
    if isinstance(obj, (tuple, list)):
        for o in obj:
            _release_payload(o)
    elif isinstance(obj, dict):
        for o in obj.values():
            _release_payload(o)


# ---------------------------------------------------------------------------
# the process-backed communicator
# ---------------------------------------------------------------------------

class _ProcRuntime:
    """Per-process plumbing shared by every communicator view.

    One instance per rank process: the world-indexed queue array, the
    run-wide abort event, the rank's private traffic ledger and the
    per-communicator buffers of received-but-unmatched messages (all
    communicators multiplex over the single per-rank queue, so a recv
    on one communicator may pull in messages for another).

    The queue/event objects only need ``put``/``get``/``get_nowait``
    and ``is_set``, so tests can instantiate the runtime over plain
    ``queue.Queue``/``threading.Event`` to exercise the matching logic
    in-process.
    """

    def __init__(self, world_rank: int, world_size: int,
                 queues: Sequence[Any], abort: Any, timeout: float,
                 traffic: Traffic) -> None:
        self.world_rank = world_rank
        self.world_size = world_size
        self.queues = list(queues)
        self.abort = abort
        self.timeout = timeout
        self.traffic = traffic
        #: comm_id -> [(kind, src_world, tag, payload)]
        self.buffers: dict[str, list[tuple[str, int, int, Any]]] = \
            defaultdict(list)

    def pump(self, block: float = 0.0) -> bool:
        """Move at most one wire message into its communicator buffer."""
        q = self.queues[self.world_rank]
        try:
            item = q.get(timeout=block) if block > 0 else q.get_nowait()
        except _queue.Empty:
            return False
        comm_id, kind, src_world, tag, enc = item
        self.buffers[comm_id].append(
            (kind, src_world, tag, _decode_payload(enc)))
        return True

    def post(self, dst_world: int, comm_id: str, kind: str, tag: int,
             obj: Any) -> None:
        self.queues[dst_world].put(
            (comm_id, kind, self.world_rank, tag, _encode_payload(obj)))


# sentinel source/tag shared with the threaded transport
ANY_SOURCE = -1
ANY_TAG = -1


class ProcessComm:
    """One rank's view of a communicator over the process transport.

    API-compatible with :class:`repro.smpi.comm.SimComm`: the whole
    op2/coupler stack runs unchanged on either. Collectives are built
    from point-to-point messages tagged with a per-communicator
    sequence counter — every member calls collectives in the same
    program order, so the counters advance in lockstep and the tags
    match without negotiation. Sub-communicators from :meth:`split`
    are deterministic ``comm_id`` namespaces over the same per-rank
    queues; no new OS resources are created after fork.
    """

    def __init__(self, runtime: _ProcRuntime, comm_id: str,
                 ranks_world: Sequence[int], rank: int) -> None:
        self._rt = runtime
        self.comm_id = comm_id
        self._ranks_world = list(ranks_world)
        self._world_to_local = {w: r for r, w in enumerate(self._ranks_world)}
        self.rank = rank
        self._seq = 0
        self._split_gen = 0

    # -- introspection -------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._ranks_world)

    @property
    def traffic(self) -> Traffic:
        return self._rt.traffic

    @property
    def world_rank(self) -> int:
        return self._ranks_world[self.rank]

    def set_phase(self, phase: str) -> None:
        self._rt.traffic.set_phase(self.world_rank, phase)

    def notify_step(self, step: int) -> None:
        """Fault plans are a threaded-transport feature; no-op here."""

    # -- point to point ------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise SimMPIError(f"send dest {dest} out of range [0, {self.size})")
        dst_world = self._ranks_world[dest]
        self._rt.traffic.record(self.world_rank, dst_world,
                                payload_nbytes(obj))
        self._rt.post(dst_world, self.comm_id, "p2p", tag, obj)

    def _recv_raw(self, kind: str, source_world: int, tag: int,
                  timeout: float) -> tuple[int, int, Any]:
        """Blocking matched receive; returns (src_world, tag, payload)."""
        rt = self._rt
        deadline = float("inf") if timeout is None else timeout
        waited = 0.0
        while True:
            buf = rt.buffers[self.comm_id]
            for i, (k, s, t, _p) in enumerate(buf):
                if k != kind:
                    continue
                if source_world not in (ANY_SOURCE, s):
                    continue
                if tag not in (ANY_TAG, t):
                    continue
                _k, s, t, p = buf.pop(i)
                return s, t, p
            if rt.abort.is_set():
                raise SimAbort("run aborted by another rank")
            if waited >= deadline:
                raise SimMPIError(
                    f"recv(source={source_world}, tag={tag}) timed out after "
                    f"{deadline:.1f}s — deadlock? (process transport has no "
                    f"wait-for-graph detector)"
                )
            step = min(_WAIT_STEP, deadline - waited)
            if not rt.pump(block=step):
                waited += step

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: float | None = None) -> Any:
        timeout = self._rt.timeout if timeout is None else timeout
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._ranks_world[source])
        _s, _t, payload = self._recv_raw("p2p", src_world, tag, timeout)
        return payload

    def recv_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                    timeout: float | None = None) -> tuple[Any, int, int]:
        timeout = self._rt.timeout if timeout is None else timeout
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._ranks_world[source])
        s, t, payload = self._recv_raw("p2p", src_world, tag, timeout)
        return payload, self._world_to_local[s], t

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Request":
        self.send(obj, dest, tag)
        from repro.smpi.comm import Request
        return Request(_done=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Request":
        from repro.smpi.comm import Request
        return Request(_resolve=lambda: self.recv(source, tag))

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        while self._rt.pump():
            pass
        src_world = (ANY_SOURCE if source == ANY_SOURCE
                     else self._ranks_world[source])
        for k, s, t, _p in self._rt.buffers[self.comm_id]:
            if k != "p2p":
                continue
            if src_world in (ANY_SOURCE, s) and tag in (ANY_TAG, t):
                return True
        return False

    def sendrecv(self, obj: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives ---------------------------------------------------
    # Built from p2p messages with kind="coll" so user tags can never
    # collide. Collective wire traffic is NOT recorded in the ledger,
    # matching the threaded transport's shared-slot collectives.

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _csend(self, obj: Any, dest: int, ctag: int) -> None:
        self._rt.post(self._ranks_world[dest], self.comm_id, "coll",
                      ctag, obj)

    def _crecv(self, source: int, ctag: int) -> Any:
        _s, _t, payload = self._recv_raw(
            "coll", self._ranks_world[source], ctag, self._rt.timeout)
        return payload

    def _gather0(self, obj: Any, seq: int) -> list[Any] | None:
        """Fan-in to rank 0, receives folded in ascending rank order."""
        if self.rank == 0:
            from repro.smpi.comm import _copy_payload
            slots = [_copy_payload(obj)]
            slots.extend(self._crecv(r, seq) for r in range(1, self.size))
            return slots
        self._csend(obj, 0, seq)
        return None

    def _bcast0(self, value: Any, seq: int) -> Any:
        if self.rank == 0:
            from repro.smpi.comm import _copy_payload
            for r in range(1, self.size):
                self._csend(value, r, seq)
            return _copy_payload(value)
        return self._crecv(0, seq)

    def barrier(self) -> None:
        seq = self._next_seq()
        self._gather0(None, seq)
        self._bcast0(None, seq)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        seq = self._next_seq()
        if self.rank == root:
            from repro.smpi.comm import _copy_payload
            for r in range(self.size):
                if r != root:
                    self._csend(obj, r, seq)
            return _copy_payload(obj)
        return self._crecv(root, seq)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        seq = self._next_seq()
        if self.rank == root:
            from repro.smpi.comm import _copy_payload
            return [_copy_payload(obj) if r == root else self._crecv(r, seq)
                    for r in range(self.size)]
        self._csend(obj, root, seq)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        seq = self._next_seq()
        slots = self._gather0(obj, seq)
        return self._bcast0(slots, seq)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        seq = self._next_seq()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise SimMPIError(
                    f"scatter root must supply {self.size} items, got "
                    f"{None if objs is None else len(objs)}"
                )
            from repro.smpi.comm import _copy_payload
            for r in range(self.size):
                if r != root:
                    self._csend(objs[r], r, seq)
            return _copy_payload(objs[root])
        return self._crecv(root, seq)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] | str = "sum",
               root: int = 0) -> Any | None:
        result = self.allreduce(obj, op)
        return result if self.rank == root else None

    def allreduce(self, obj: Any,
                  op: Callable[[Any, Any], Any] | str = "sum") -> Any:
        from repro.smpi.comm import _REDUCE_OPS
        if isinstance(op, str) and op not in _REDUCE_OPS:
            raise SimMPIError(
                f"unknown reduce op {op!r}; use one of {sorted(_REDUCE_OPS)}")
        fn = _REDUCE_OPS[op] if isinstance(op, str) else op
        seq = self._next_seq()
        slots = self._gather0(obj, seq)
        if self.rank == 0:
            # fold in ascending rank order — bitwise-identical to the
            # threaded transport's slot fold
            acc = slots[0]
            for other in slots[1:]:
                acc = fn(acc, other)
            return self._bcast0(acc, seq)
        return self._bcast0(None, seq)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise SimMPIError(
                f"alltoall needs {self.size} items, got {len(objs)}")
        from repro.smpi.comm import _copy_payload
        seq = self._next_seq()
        for r in range(self.size):
            if r != self.rank:
                self._csend(objs[r], r, seq)
        return [_copy_payload(objs[r]) if r == self.rank
                else self._crecv(r, seq) for r in range(self.size)]

    # -- communicator management ---------------------------------------
    def split(self, color: int, key: int | None = None) -> "ProcessComm | None":
        """Partition by ``color``; deterministic comm ids on all ranks.

        Every member computes the same grouping from the same
        allgathered ``(color, key, rank)`` triples, so the derived
        ``comm_id`` — ``"{parent}/{gen}.{color}"`` — agrees everywhere
        without a coordinator.
        """
        key = self.rank if key is None else key
        pairs = self.allgather((color, key, self.rank))
        self._split_gen += 1
        if color < 0:
            return None
        members = sorted((k, r) for c, k, r in pairs if c == color)
        ranks = [r for _k, r in members]
        sub_id = f"{self.comm_id}/{self._split_gen}.{color}"
        return ProcessComm(self._rt, sub_id,
                           [self._ranks_world[r] for r in ranks],
                           ranks.index(self.rank))


# ---------------------------------------------------------------------------
# process lifecycle
# ---------------------------------------------------------------------------

def _child_main(rank: int, nranks: int, fn: Callable[..., Any], args: tuple,
                queues: Sequence[Any], conn: Any, abort: Any, done: Any,
                timeout: float) -> None:
    """Rank body: run ``fn``, report over the pipe, wait, hard-exit.

    The explicit ``os._exit`` (after the parent signals ``done``)
    skips inherited atexit handlers and queue-feeder joins that would
    otherwise deadlock a fork child; ``done`` guarantees every queue
    message this rank produced has either been consumed by a peer or
    drained by the parent before the feeder threads are cancelled.
    """
    traffic = Traffic()
    runtime = _ProcRuntime(rank, nranks, queues, abort, timeout, traffic)
    comm = ProcessComm(runtime, "world", list(range(nranks)), rank)
    status: str
    payload: Any
    try:
        payload = fn(comm, *args)
        status = "ok"
    except SimAbort:
        status, payload = "abort", None
    except BaseException as exc:  # noqa: BLE001 — reported to the parent
        abort.set()
        status, payload = "err", exc
    report = (status, payload, traffic.message_log())
    try:
        blob = pickle.dumps(report)
    except Exception as exc:  # result/exception not picklable
        fallback = ("err",
                    SimMPIError(f"rank {rank} result not picklable: {exc!r}"),
                    traffic.message_log())
        blob = pickle.dumps(fallback)
    try:
        conn.send_bytes(blob)
    except Exception:  # pragma: no cover - parent already gone
        pass
    done.wait(timeout=max(timeout, 30.0))
    for q in queues:
        q.cancel_join_thread()
    os._exit(0)


def _drain_queues(queues: Sequence[Any]) -> None:
    """Empty every rank queue, unlinking stray shared-memory segments."""
    empty_passes = 0
    while empty_passes < 2:
        got = False
        for q in queues:
            while True:
                try:
                    item = q.get_nowait()
                except _queue.Empty:
                    break
                except (OSError, ValueError):  # pragma: no cover - closed
                    break
                got = True
                _release_payload(item[4])
        if got:
            empty_passes = 0
        else:
            empty_passes += 1
            time.sleep(0.01)


def run_ranks_process(nranks: int, fn: Callable[..., Any], args: tuple = (),
                      timeout: float = 120.0,
                      traffic: Traffic | None = None,
                      watchdog_s: float | None = None) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``nranks`` forked OS processes.

    The process-transport twin of :func:`repro.smpi.comm.run_ranks`:
    same call shape, same return contract (per-rank results in rank
    order; the lowest-failing-rank exception re-raised on failure),
    but ranks execute with true multi-core parallelism. ``fork`` is
    required — test suites pass closures over mesh data, which spawn
    could not pickle — so this transport is POSIX-only.

    ``watchdog_s`` bounds how long the parent waits for all ranks to
    report before declaring the stragglers hung (default
    ``$REPRO_SMPI_WATCHDOG_S``, else ``2 * timeout``); see
    :func:`watchdog_seconds`.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only guard
        raise TransportError("process transport requires fork()")
    out_traffic = traffic if traffic is not None else Traffic()
    ctx = mp.get_context("fork")
    # start the shm resource tracker before forking so children inherit
    # a live tracker instead of racing to spawn their own
    resource_tracker.ensure_running()
    queues = [ctx.Queue() for _ in range(nranks)]
    pipes = [ctx.Pipe(duplex=False) for _ in range(nranks)]
    abort = ctx.Event()
    done = ctx.Event()
    procs = [
        ctx.Process(target=_child_main,
                    args=(r, nranks, fn, args, queues, pipes[r][1], abort,
                          done, timeout),
                    name=f"smpi-proc-{r}", daemon=True)
        for r in range(nranks)
    ]
    reports: list[tuple[str, Any, list] | None] = [None] * nranks
    try:
        for p in procs:
            p.start()
        for _parent, child in pipes:
            child.close()
        conn_rank = {pipes[r][0]: r for r in range(nranks)}
        pending = set(range(nranks))
        watchdog = watchdog_seconds(timeout, watchdog_s)
        deadline = time.monotonic() + watchdog

        def _collect(until: float) -> None:
            while pending and time.monotonic() < until:
                ready = _mpconn.wait(
                    [pipes[r][0] for r in pending],
                    timeout=min(0.2, max(0.0, until - time.monotonic())))
                for conn in ready:
                    r = conn_rank[conn]
                    try:
                        reports[r] = pickle.loads(conn.recv_bytes())
                    except (EOFError, OSError):
                        reports[r] = ("died", None, [])
                    pending.discard(r)

        _collect(deadline)
        if pending:
            # watchdog expired: wake blocked ranks, give them a short
            # grace to report SimAbort, then declare them hung
            abort.set()
            _collect(time.monotonic() + 5.0)
            for r in pending:
                reports[r] = ("hung", None, [])
            pending.clear()
        _drain_queues(queues)
        done.set()
        for p in procs:
            p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=5.0)
    finally:
        done.set()
        for p in procs:
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
        for q in queues:
            q.close()
        for parent, _child in pipes:
            parent.close()

    # merge per-rank logs in ascending rank order: the canonical
    # sender-ordered schedule, deterministic run to run
    for report in reports:
        if report is not None:
            out_traffic.merge_log(report[2])

    failures: list[tuple[int, BaseException]] = []
    for r, report in enumerate(reports):
        status = report[0] if report is not None else "died"
        if status == "err":
            failures.append((r, report[1]))
        elif status == "died":
            code = procs[r].exitcode
            failures.append((r, SimMPIError(
                f"rank {r} process died without reporting "
                f"(exitcode {code})")))
        elif status == "hung":
            failures.append((r, SimMPIError(
                f"rank {r} failed to terminate within the {watchdog:.1f}s "
                f"watchdog (${WATCHDOG_ENV} / watchdog_s) — deadlock? "
                f"(process transport has no wait-for-graph detector)")))
    if failures:
        failures.sort(key=lambda pair: pair[0])
        raise failures[0][1]
    if any(report is not None and report[0] == "abort" for report in reports):
        # every rank either aborted or succeeded, yet nobody reported
        # the original error (e.g. it died unpicklably)
        raise SimMPIError("run aborted but no rank reported a failure")
    return [report[1] for report in reports]  # type: ignore[index]
