"""Per-loop profiling: where does the time go?

OP2's generated code is instrumented per loop; the paper's analysis
(compute vs halo vs coupler) starts from exactly this breakdown. When
``Config.profile`` (or ``Config.trace``) is on, every par_loop records
its wall-clock under its kernel name, split into halo-exchange time and
compute time.

Since the telemetry subsystem landed, the numbers live in the thread's
:class:`~repro.telemetry.recorder.RankRecorder` (``loop_stats``) — one
source of truth shared with trace spans and metrics summaries — and
:class:`LoopProfile` is a thin view over it that preserves the original
API (``records``, ``record``, ``top``, ``total_seconds``, ``report``,
``reset``).
"""

from __future__ import annotations

from repro.telemetry.recorder import (LoopStat, RankRecorder,
                                      current_recorder)

#: Legacy name — the record type now lives in repro.telemetry.
LoopRecord = LoopStat


class LoopProfile:
    """Per-kernel cost view over a telemetry recorder's ``loop_stats``.

    By default binds to the calling thread's recorder, so profiles keep
    their historical per-rank (= per-thread) scoping.
    """

    def __init__(self, recorder: RankRecorder | None = None) -> None:
        self._recorder = recorder

    @property
    def recorder(self) -> RankRecorder:
        return self._recorder if self._recorder is not None \
            else current_recorder()

    @property
    def records(self) -> dict[str, LoopRecord]:
        return self.recorder.loop_stats

    def record(self, kernel_name: str, compute: float, halo: float,
               elements: int) -> None:
        self.recorder.record_loop(kernel_name, compute, halo, elements)

    def top(self, n: int = 10) -> list[tuple[str, LoopRecord]]:
        """The n most expensive kernels, by total time."""
        return sorted(self.records.items(),
                      key=lambda kv: kv[1].total_seconds, reverse=True)[:n]

    def total_seconds(self) -> float:
        return sum(r.total_seconds for r in self.records.values())

    def report(self, n: int = 10) -> str:
        """Aligned text report of the top kernels."""
        from repro.util.tables import format_table

        total = self.total_seconds()
        rows = []
        for name, rec in self.top(n):
            share = 100.0 * rec.total_seconds / total if total else 0.0
            rows.append([name, rec.calls, rec.elements,
                         rec.compute_seconds * 1e3, rec.halo_seconds * 1e3,
                         share])
        return format_table(
            ["kernel", "calls", "elements", "compute ms", "halo ms", "%"],
            rows, title="par_loop profile (this rank)", floatfmt=".2f")

    def reset(self) -> None:
        self.records.clear()


def current_profile() -> LoopProfile:
    """This thread's loop profile (a view over its telemetry recorder)."""
    return LoopProfile()


def reset_profile() -> None:
    current_profile().reset()
