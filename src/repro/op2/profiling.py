"""Per-loop profiling: where does the time go?

OP2's generated code is instrumented per loop; the paper's analysis
(compute vs halo vs coupler) starts from exactly this breakdown. When
``Config.profile`` is on, every par_loop records its wall-clock under
its kernel name, split into halo-exchange time and compute time, into
a thread-local profile (each simulated-MPI rank gets its own).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class LoopRecord:
    """Accumulated cost of one kernel's loops on this thread."""

    calls: int = 0
    compute_seconds: float = 0.0
    halo_seconds: float = 0.0
    elements: int = 0

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.halo_seconds


class LoopProfile:
    """A per-thread registry of :class:`LoopRecord`."""

    def __init__(self) -> None:
        self.records: dict[str, LoopRecord] = {}

    def record(self, kernel_name: str, compute: float, halo: float,
               elements: int) -> None:
        rec = self.records.setdefault(kernel_name, LoopRecord())
        rec.calls += 1
        rec.compute_seconds += compute
        rec.halo_seconds += halo
        rec.elements += elements

    def top(self, n: int = 10) -> list[tuple[str, LoopRecord]]:
        """The n most expensive kernels, by total time."""
        return sorted(self.records.items(),
                      key=lambda kv: kv[1].total_seconds, reverse=True)[:n]

    def total_seconds(self) -> float:
        return sum(r.total_seconds for r in self.records.values())

    def report(self, n: int = 10) -> str:
        """Aligned text report of the top kernels."""
        from repro.util.tables import format_table

        total = self.total_seconds()
        rows = []
        for name, rec in self.top(n):
            share = 100.0 * rec.total_seconds / total if total else 0.0
            rows.append([name, rec.calls, rec.elements,
                         rec.compute_seconds * 1e3, rec.halo_seconds * 1e3,
                         share])
        return format_table(
            ["kernel", "calls", "elements", "compute ms", "halo ms", "%"],
            rows, title="par_loop profile (this rank)", floatfmt=".2f")

    def reset(self) -> None:
        self.records.clear()


_tls = threading.local()


def current_profile() -> LoopProfile:
    """This thread's loop profile (created on first use)."""
    prof = getattr(_tls, "profile", None)
    if prof is None:
        prof = LoopProfile()
        _tls.profile = prof
    return prof


def reset_profile() -> None:
    current_profile().reset()
