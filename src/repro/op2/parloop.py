"""The par_loop frontend: validation, dispatch, and MPI orchestration.

``par_loop(kernel, iterset, *args)`` is the single entry point of the
DSL (the paper's ``op_par_loop``). It validates the argument list,
derives the loop *signature* that drives code generation, and executes
through the configured backend. For distributed sets it additionally
performs the paper's owner-compute protocol:

1. forward halo exchanges for every stale dat the loop will read
   (full, or partial per-map/exec-region when ``Config.partial_halos``
   is on; packed per-neighbour when ``Config.grouped_halos`` is on);
2. execution over owned elements, then **redundant execution** over
   the import-exec halo with a discarded reduction buffer so global
   reductions count each element exactly once;
3. staleness marking for every written dat and an allreduce to
   finalize reductions.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.op2.access import Access, READING, WRITING
from repro.op2.args import Arg
from repro.op2.backends import ReductionBuffers, resolve_backend
from repro.op2.config import current_config
from repro.op2.halo import exchange_halos
from repro.op2.kernel import Kernel
from repro.op2.set import Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.backends.base import Backend


def loop_read_scopes(loop: "ParLoop", cfg) -> dict[int, tuple]:
    """Per-dat halo scopes ``loop`` reads: ``id(dat) -> (dat, {scopes})``.

    The single scope-selection rule shared by eager execution and the
    chain analyzer (which must mirror it exactly for elision to be
    sound). Under ``Config.partial_halos`` an indirect read needs the
    map's scope at the depth the execution extent requires: the full
    per-map scope (owned+exec rows) when the loop executes redundantly
    over the exec halo, only the ``@own`` depth-1 scope (owned rows)
    otherwise. Direct reads need the exec region exactly when the loop
    executes it.

    Scope choices key off :attr:`ParLoop.has_indirect_writes` — a
    property of the loop's argument list, identical on every rank —
    never off this rank's execution extent: a rank whose exec halo
    happens to be empty (``exec_size == size``) must still pick the
    same scope names as its neighbours, or pairwise-matched exchange
    plans desynchronize and the run deadlocks.
    """
    redundant = loop.has_indirect_writes  # uniform across ranks
    needs: dict[int, tuple] = {}
    for arg in loop.args:
        if not arg.is_dat or arg.access not in READING:
            continue
        dat = arg.data
        if dat.set.halo is None:
            continue
        if arg.is_indirect:
            if not cfg.partial_halos:
                scope = "full"
            else:
                scope = arg.map.name if redundant else f"{arg.map.name}@own"
        else:
            if not redundant:
                continue  # owned-only direct reads touch no halo
            scope = "exec" if cfg.partial_halos else "full"
        entry = needs.setdefault(id(dat), (dat, set()))
        entry[1].add(scope)
    return needs


class ParLoop:
    """A validated parallel loop over ``iterset``."""

    def __init__(self, kernel: Kernel, iterset: Set, args: list[Arg]) -> None:
        if not isinstance(kernel, Kernel):
            raise TypeError(f"kernel must be a Kernel, got {type(kernel).__name__}")
        if not isinstance(iterset, Set):
            raise TypeError(f"iterset must be a Set, got {type(iterset).__name__}")
        if len(kernel.params) != len(args):
            raise ValueError(
                f"kernel {kernel.name!r} takes {len(kernel.params)} parameters "
                f"but {len(args)} loop arguments were supplied"
            )
        for arg in args:
            if not isinstance(arg, Arg):
                raise TypeError(f"loop arguments must be Args, got {arg!r}")
            arg.validate_for(iterset)
        self.kernel = kernel
        self.iterset = iterset
        self.args = args

    # -- loop characterization ------------------------------------------
    @property
    def has_indirect_writes(self) -> bool:
        return any(
            a.is_indirect and a.access in (Access.INC, Access.WRITE)
            for a in self.args
        )

    def signature(self) -> tuple:
        """Hashable per-arg descriptor tuple driving code generation."""
        sig = []
        for arg in self.args:
            if arg.is_global:
                sig.append(("gbl", arg.access, arg.dim))
            else:
                addressing = ("direct" if arg.is_direct
                              else "all" if arg.is_vector else "idx")
                arity = arg.map.arity if arg.map is not None else 0
                sig.append(("dat", arg.access, addressing, arg.dim, arity))
        return tuple(sig)

    def native_signature(self) -> tuple:
        """Signature extended with map indices, for compiled codegen.

        :meth:`signature` deliberately omits which map *column* an
        indirect argument uses — numpy wrappers receive the column as a
        pre-sliced array. The compiled native wrapper instead indexes
        the full contiguous map table in C (``m[n * arity + idx]``, the
        strided column view has no zero-copy pointer), so its cache key
        and codegen need the index: dat entries grow a sixth element
        (``None`` for direct and vector arguments).
        """
        sig = []
        for arg in self.args:
            if arg.is_global:
                sig.append(("gbl", arg.access, arg.dim))
            else:
                addressing = ("direct" if arg.is_direct
                              else "all" if arg.is_vector else "idx")
                arity = arg.map.arity if arg.map is not None else 0
                idx = arg.idx if (arg.is_indirect
                                  and not arg.is_vector) else None
                sig.append(("dat", arg.access, addressing, arg.dim, arity,
                            idx))
        return tuple(sig)

    #: plan-cached (template, patches) installed by the chain executor
    _flat_template = None

    def flatten_bindings(self, reductions: ReductionBuffers) -> list:
        """Runtime arrays in the order generated wrappers expect."""
        tmpl = self._flat_template
        if tmpl is not None:
            # executor fast path: dat arrays and map columns come from the
            # flush plan (identity-validated there); only Global slots are
            # dynamic — reduction buffers are per-call and Global._data may
            # be rebound by host writes between flushes
            flat, patches = tmpl
            flat = flat.copy()
            for slot, i, is_red in patches:
                flat[slot] = (reductions.buffer_for(i) if is_red
                              else self.args[i].data._data)
            return flat
        flat = []
        for i, arg in enumerate(self.args):
            if arg.is_global:
                if arg.is_reduction:
                    flat.append(reductions.buffer_for(i))
                else:
                    flat.append(arg.data.data)
            else:
                flat.append(arg.data.data_with_halos)
                if arg.is_indirect:
                    if arg.is_vector:
                        flat.append(arg.map.values)
                    else:
                        flat.append(arg.map.column(arg.idx))
        return flat

    def binding_template(self) -> tuple[list, list]:
        """Precompute :meth:`flatten_bindings` for repeated execution.

        Returns ``(template, patches)``: the flat list with every
        statically-bound array filled in (``Dat._data`` is assigned only
        at construction; ``Map.values`` is immutable) and a patch list
        ``(slot, arg index, is_reduction)`` for the Global slots that
        must be rebound on every call. Valid exactly as long as the
        loop's dat/map bindings are — which is what the chain's flush
        plan re-validates by identity before reusing one.
        """
        flat: list = []
        patches: list = []
        for i, arg in enumerate(self.args):
            if arg.is_global:
                patches.append((len(flat), i, arg.is_reduction))
                flat.append(None)
            else:
                flat.append(arg.data._data)
                if arg.is_indirect:
                    if arg.is_vector:
                        flat.append(arg.map.values)
                    else:
                        flat.append(arg.map.column(arg.idx))
        return flat, patches

    # -- execution --------------------------------------------------------
    def execute(self, backend_name: str | None = None) -> None:
        cfg = current_config()
        if cfg.sanitize:  # sanitize mode audits every loop, overrides all
            backend_name = "sanitizer"
        backend = resolve_backend(backend_name or cfg.backend)
        tracing = cfg.trace
        profiling = cfg.profile or tracing
        t0 = time.perf_counter() if profiling else 0.0
        if self.iterset.is_distributed:
            halo_seconds = self._execute_distributed(backend)
        else:
            halo_seconds = 0.0
            reductions = ReductionBuffers(self.args)
            backend.execute(self, 0, self.iterset.size, reductions)
            reductions.finalize(None)
            self._mark_written_stale()
        if profiling:
            from repro.telemetry.recorder import current_recorder

            elapsed = time.perf_counter() - t0
            current_recorder().record_loop(
                self.kernel.name, compute=elapsed - halo_seconds,
                halo=halo_seconds, elements=self.iterset.size,
                t0=t0 if tracing else None)

    def run_compute(self, backend: "Backend") -> None:
        """Execute compute only; halo freshness is the *caller's* concern.

        The loop-chain flush path: the chain analyzer has already
        scheduled (or elided) this loop's exchanges, so this skips
        ``_refresh_halos`` but otherwise mirrors :meth:`execute` —
        owned range, redundant execution over the import-exec halo with
        a discarded scratch buffer, staleness marking, and reduction
        finalize (allreduce in distributed runs).
        """
        cfg = current_config()
        tracing = cfg.trace
        profiling = cfg.profile or tracing
        t0 = time.perf_counter() if profiling else 0.0
        halo = self.iterset.halo
        comm = halo.comm if halo is not None else None
        extent = (self.iterset.exec_size if self.has_indirect_writes
                  else self.iterset.size)
        reductions = ReductionBuffers(self.args)
        backend.execute(self, 0, self.iterset.size, reductions)
        if extent > self.iterset.size:
            scratch = ReductionBuffers(self.args)
            backend.execute(self, self.iterset.size, extent, scratch)
        self._mark_written_stale()
        reductions.finalize(comm)
        if profiling:
            from repro.telemetry.recorder import current_recorder

            elapsed = time.perf_counter() - t0
            current_recorder().record_loop(
                self.kernel.name, compute=elapsed, halo=0.0,
                elements=self.iterset.size, t0=t0 if tracing else None)

    def _execute_distributed(self, backend: "Backend") -> float:
        """Run distributed; returns seconds spent in halo exchanges."""
        cfg = current_config()
        assert self.iterset.halo is not None
        comm = self.iterset.halo.comm
        extent = (self.iterset.exec_size if self.has_indirect_writes
                  else self.iterset.size)
        t0 = time.perf_counter()
        self._refresh_halos(cfg)
        halo_seconds = time.perf_counter() - t0

        reductions = ReductionBuffers(self.args)
        backend.execute(self, 0, self.iterset.size, reductions)
        if extent > self.iterset.size:
            scratch = ReductionBuffers(self.args)
            backend.execute(self, self.iterset.size, extent, scratch)
        self._mark_written_stale()
        reductions.finalize(comm)
        return halo_seconds

    def _refresh_halos(self, cfg) -> None:
        """Forward-exchange every stale dat the loop will read from halos."""
        from repro.op2.halo import resolve_eager_scope

        # collect needed scopes per dat
        needs = loop_read_scopes(self, cfg)

        # group stale dats by (set, resolved scope) and exchange together
        groups: dict[tuple[int, str], tuple] = {}
        for dat, scopes in needs.values():
            scope = resolve_eager_scope(scopes)
            if dat.is_fresh_for(scope):
                continue
            key = (id(dat.set), scope)
            groups.setdefault(key, (dat.set, scope, []))[2].append(dat)
        for sset, scope, dats in groups.values():
            exchange_halos(sset, dats, scope=scope, grouped=cfg.grouped_halos)

    def _mark_written_stale(self) -> None:
        for arg in self.args:
            if arg.is_dat and arg.access in WRITING:
                arg.data.mark_halo_stale()


def execute_fused(loops: list[ParLoop], backend_name: str) -> None:
    """Run a chain-validated group of loops as one fused wrapper.

    All loops share the iteration set and execution extent (the chain's
    fusion legality check guarantees this); each keeps its own
    reduction buffers, and redundant exec-halo execution uses discarded
    scratch buffers exactly as in single-loop execution.
    """
    from repro.op2.config import current_config as _cc

    cfg = _cc()
    backend = resolve_backend(backend_name)
    iterset = loops[0].iterset
    halo = iterset.halo
    comm = halo.comm if halo is not None else None
    extent = (iterset.exec_size
              if any(l.has_indirect_writes for l in loops)
              else iterset.size)
    tracing = cfg.trace
    profiling = cfg.profile or tracing
    t0 = time.perf_counter() if profiling else 0.0

    reductions = [ReductionBuffers(l.args) for l in loops]
    backend.execute_fused(loops, 0, iterset.size, reductions)
    if extent > iterset.size:
        scratch = [ReductionBuffers(l.args) for l in loops]
        backend.execute_fused(loops, iterset.size, extent, scratch)
    for loop in loops:
        loop._mark_written_stale()
    for loop, red in zip(loops, reductions):
        red.finalize(comm)
    if profiling:
        from repro.telemetry.recorder import current_recorder

        elapsed = time.perf_counter() - t0
        name = "+".join(l.kernel.name for l in loops)
        current_recorder().record_loop(
            name, compute=elapsed, halo=0.0, elements=iterset.size,
            t0=t0 if tracing else None)


def par_loop(kernel: Kernel, iterset: Set, *args: Arg,
             backend: str | None = None) -> None:
    """Declare a parallel loop (OP2's ``op_par_loop``).

    Executes immediately in eager mode; under ``Config.lazy`` or an
    open :func:`~repro.op2.chain.loop_chain` the validated loop is
    enqueued instead and runs (elided/batched/fused, but bitwise
    equivalent) when the chain flushes.

    Parameters
    ----------
    kernel:
        The elemental :class:`~repro.op2.kernel.Kernel`; its positional
        parameters pair up with ``args``.
    iterset:
        The set iterated over.
    args:
        One :class:`~repro.op2.args.Arg` per kernel parameter, built
        via ``dat.arg(access, map, idx)`` / ``global_.arg(access)``.
    backend:
        Override the configured compute backend for this loop.
    """
    from repro.op2 import chain

    loop = ParLoop(kernel, iterset, list(args))
    if chain.submit(loop, backend):
        return
    loop.execute(backend)
