"""The par_loop frontend: validation, dispatch, and MPI orchestration.

``par_loop(kernel, iterset, *args)`` is the single entry point of the
DSL (the paper's ``op_par_loop``). It validates the argument list,
derives the loop *signature* that drives code generation, and executes
through the configured backend. For distributed sets it additionally
performs the paper's owner-compute protocol:

1. forward halo exchanges for every stale dat the loop will read
   (full, or partial per-map/exec-region when ``Config.partial_halos``
   is on; packed per-neighbour when ``Config.grouped_halos`` is on);
2. execution over owned elements, then **redundant execution** over
   the import-exec halo with a discarded reduction buffer so global
   reductions count each element exactly once;
3. staleness marking for every written dat and an allreduce to
   finalize reductions.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.op2.access import Access, READING, WRITING
from repro.op2.args import Arg
from repro.op2.backends import ReductionBuffers, resolve_backend
from repro.op2.config import current_config
from repro.op2.halo import exchange_halos
from repro.op2.kernel import Kernel
from repro.op2.set import Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.backends.base import Backend


class ParLoop:
    """A validated parallel loop over ``iterset``."""

    def __init__(self, kernel: Kernel, iterset: Set, args: list[Arg]) -> None:
        if not isinstance(kernel, Kernel):
            raise TypeError(f"kernel must be a Kernel, got {type(kernel).__name__}")
        if not isinstance(iterset, Set):
            raise TypeError(f"iterset must be a Set, got {type(iterset).__name__}")
        if len(kernel.params) != len(args):
            raise ValueError(
                f"kernel {kernel.name!r} takes {len(kernel.params)} parameters "
                f"but {len(args)} loop arguments were supplied"
            )
        for arg in args:
            if not isinstance(arg, Arg):
                raise TypeError(f"loop arguments must be Args, got {arg!r}")
            arg.validate_for(iterset)
        self.kernel = kernel
        self.iterset = iterset
        self.args = args

    # -- loop characterization ------------------------------------------
    @property
    def has_indirect_writes(self) -> bool:
        return any(
            a.is_indirect and a.access in (Access.INC, Access.WRITE)
            for a in self.args
        )

    def signature(self) -> tuple:
        """Hashable per-arg descriptor tuple driving code generation."""
        sig = []
        for arg in self.args:
            if arg.is_global:
                sig.append(("gbl", arg.access, arg.dim))
            else:
                addressing = ("direct" if arg.is_direct
                              else "all" if arg.is_vector else "idx")
                arity = arg.map.arity if arg.map is not None else 0
                sig.append(("dat", arg.access, addressing, arg.dim, arity))
        return tuple(sig)

    def flatten_bindings(self, reductions: ReductionBuffers) -> list:
        """Runtime arrays in the order generated wrappers expect."""
        flat: list = []
        for i, arg in enumerate(self.args):
            if arg.is_global:
                if arg.is_reduction:
                    flat.append(reductions.buffer_for(i))
                else:
                    flat.append(arg.data.data)
            else:
                flat.append(arg.data.data_with_halos)
                if arg.is_indirect:
                    if arg.is_vector:
                        flat.append(arg.map.values)
                    else:
                        flat.append(arg.map.column(arg.idx))
        return flat

    # -- execution --------------------------------------------------------
    def execute(self, backend_name: str | None = None) -> None:
        cfg = current_config()
        if cfg.sanitize:  # sanitize mode audits every loop, overrides all
            backend_name = "sanitizer"
        backend = resolve_backend(backend_name or cfg.backend)
        tracing = cfg.trace
        profiling = cfg.profile or tracing
        t0 = time.perf_counter() if profiling else 0.0
        if self.iterset.is_distributed:
            halo_seconds = self._execute_distributed(backend)
        else:
            halo_seconds = 0.0
            reductions = ReductionBuffers(self.args)
            backend.execute(self, 0, self.iterset.size, reductions)
            reductions.finalize(None)
            self._mark_written_stale()
        if profiling:
            from repro.telemetry.recorder import current_recorder

            elapsed = time.perf_counter() - t0
            current_recorder().record_loop(
                self.kernel.name, compute=elapsed - halo_seconds,
                halo=halo_seconds, elements=self.iterset.size,
                t0=t0 if tracing else None)

    def _execute_distributed(self, backend: "Backend") -> float:
        """Run distributed; returns seconds spent in halo exchanges."""
        cfg = current_config()
        assert self.iterset.halo is not None
        comm = self.iterset.halo.comm
        extent = (self.iterset.exec_size if self.has_indirect_writes
                  else self.iterset.size)
        t0 = time.perf_counter()
        self._refresh_halos(extent, cfg)
        halo_seconds = time.perf_counter() - t0

        reductions = ReductionBuffers(self.args)
        backend.execute(self, 0, self.iterset.size, reductions)
        if extent > self.iterset.size:
            scratch = ReductionBuffers(self.args)
            backend.execute(self, self.iterset.size, extent, scratch)
        self._mark_written_stale()
        reductions.finalize(comm)
        return halo_seconds

    def _refresh_halos(self, extent: int, cfg) -> None:
        """Forward-exchange every stale dat the loop will read from halos."""
        # collect needed scopes per dat
        needs: dict[int, tuple] = {}  # id(dat) -> (dat, set of scope keys)
        for arg in self.args:
            if not arg.is_dat or arg.access not in READING:
                continue
            dat = arg.data
            if dat.set.halo is None:
                continue
            if arg.is_indirect:
                scope = arg.map.name if cfg.partial_halos else "full"
            else:
                if extent <= self.iterset.size:
                    continue  # owned-only direct reads touch no halo
                scope = "exec" if cfg.partial_halos else "full"
            entry = needs.setdefault(id(dat), (dat, set()))
            entry[1].add(scope)

        # group stale dats by (set, resolved scope) and exchange together
        groups: dict[tuple[int, str], tuple] = {}
        for dat, scopes in needs.values():
            scope = scopes.pop() if len(scopes) == 1 else "full"
            if dat.is_fresh_for(scope):
                continue
            key = (id(dat.set), scope)
            groups.setdefault(key, (dat.set, scope, []))[2].append(dat)
        for sset, scope, dats in groups.values():
            exchange_halos(sset, dats, scope=scope, grouped=cfg.grouped_halos)

    def _mark_written_stale(self) -> None:
        for arg in self.args:
            if arg.is_dat and arg.access in WRITING:
                arg.data.mark_halo_stale()


def par_loop(kernel: Kernel, iterset: Set, *args: Arg,
             backend: str | None = None) -> None:
    """Declare and immediately execute a parallel loop (OP2's
    ``op_par_loop``).

    Parameters
    ----------
    kernel:
        The elemental :class:`~repro.op2.kernel.Kernel`; its positional
        parameters pair up with ``args``.
    iterset:
        The set iterated over.
    args:
        One :class:`~repro.op2.args.Arg` per kernel parameter, built
        via ``dat.arg(access, map, idx)`` / ``global_.arg(access)``.
    backend:
        Override the configured compute backend for this loop.
    """
    ParLoop(kernel, iterset, list(args)).execute(backend)
