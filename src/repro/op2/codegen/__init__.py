"""OP2 code generation: one scalar kernel source → many parallelizations.

This package is the analogue of the paper's Python/Clang code-generation
tool-chain (Fig. 4). Given a kernel and a par_loop *signature* (how each
argument is addressed and accessed), it emits specialized, human-readable
Python source — a scalar gather/call loop for the sequential backend, or
a numpy whole-array translation with gather/compute/scatter staging for
the vectorized, coloring and atomics (CUDA-analogue) backends — then
compiles and caches it on the kernel.
"""

from repro.op2.codegen.csource import generate_cuda, generate_openmp
from repro.op2.codegen.seq import generate_sequential
from repro.op2.codegen.vector import generate_vectorized

__all__ = ["generate_sequential", "generate_vectorized",
           "generate_cuda", "generate_openmp"]
