"""Sequential backend code generation.

Emits the classic OP2 "seq" wrapper: a scalar loop that gathers
per-element views (direct slice, map-indexed slice, or staged
vector-argument block), calls the *original* user kernel, and scatters
any staged results back. This is the reference semantics every other
backend must reproduce.

Wrapper calling convention (shared with the vectorized generators)::

    wrapper(_np, _kernel, _start, _end, *flat)

where ``flat`` contains, per argument, the arrays listed by
``ParLoop.flatten_bindings``: the dat storage array (plus its map
column/rows for indirect args), the Global data array (READ), or a
neutral-initialized partial reduction buffer.
"""

from __future__ import annotations

from typing import Sequence

from repro.op2.access import Access


def generate_sequential(kernel_name: str, signature: Sequence[tuple]) -> str:
    """Return wrapper source for a loop with the given arg signature.

    ``signature`` holds one tuple per argument:
    ``("dat", access, addressing, dim, arity)`` with addressing in
    ``{"direct", "idx", "all"}``, or ``("gbl", access, dim)``.
    """
    params: list[str] = []
    pre: list[str] = []     # per-element staging before the kernel call
    call: list[str] = []    # kernel actual arguments
    post: list[str] = []    # per-element write-back after the call

    for i, sig in enumerate(signature):
        kind = sig[0]
        if kind == "gbl":
            params.append(f"_g{i}")
            call.append(f"_g{i}")
            continue
        _, access, addressing, _dim, _arity = sig
        params.append(f"_a{i}")
        if addressing == "direct":
            call.append(f"_a{i}[_e]")
        elif addressing == "idx":
            params.append(f"_m{i}")
            call.append(f"_a{i}[_m{i}[_e]]")
        elif addressing == "all":
            # fancy indexing copies, so vector args are staged explicitly
            params.append(f"_m{i}")
            if access is Access.INC:
                pre.append(f"_t{i} = _np.zeros_like(_a{i}[_m{i}[_e]])")
                post.append(f"_np.add.at(_a{i}, _m{i}[_e], _t{i})")
            else:
                pre.append(f"_t{i} = _a{i}[_m{i}[_e]]")
                if access in (Access.WRITE, Access.RW):
                    post.append(f"_a{i}[_m{i}[_e]] = _t{i}")
            call.append(f"_t{i}")
        else:  # pragma: no cover - signature is runtime-built
            raise ValueError(f"unknown addressing {addressing!r}")

    body: list[str] = [f"for _e in range(_start, _end):"]
    inner = pre + [f"_kernel({', '.join(call)})"] + post
    body.extend(f"    {line}" for line in inner)

    lines = [
        f"def {kernel_name}_seq_wrapper(_np, _kernel, _start, _end, "
        f"{', '.join(params)}):",
        f'    """Generated sequential (reference) wrapper for {kernel_name}."""',
    ]
    lines.extend(f"    {line}" for line in body)
    return "\n".join(lines) + "\n"


def flat_arg_count(signature: Sequence[tuple]) -> int:
    """How many flat runtime arrays ``ParLoop.flatten_bindings`` yields."""
    count = 0
    for sig in signature:
        count += 1
        if sig[0] == "dat" and sig[2] != "direct":
            count += 1  # the map column / rows array
    return count


def generate_fused_sequential(kernel_names: Sequence[str],
                              signatures: Sequence[Sequence[tuple]]) -> str:
    """Emit one module executing several loops' wrappers back to back.

    Fusion by *section composition*: each constituent wrapper is
    generated unchanged, renamed ``_f{j}_<name>``, and an entry point
    ``_fused_seq_wrapper(_np, _kernels, _start, _end, *_flat)`` calls
    the sections in program order on their slices of the concatenated
    flat bindings. Execution is therefore bitwise-identical to running
    the loops separately — the fusion win is one dispatch, one compiled
    module, and no per-loop runtime re-entry.
    """
    sections: list[str] = []
    calls: list[str] = []
    offset = 0
    for j, (name, sig) in enumerate(zip(kernel_names, signatures)):
        sub = generate_sequential(name, sig)
        renamed = sub.replace(f"def {name}_seq_wrapper(",
                              f"def _f{j}_{name}(", 1)
        sections.append(renamed)
        n = flat_arg_count(sig)
        calls.append(f"_f{j}_{name}(_np, _kernels[{j}], _start, _end, "
                     f"*_flat[{offset}:{offset + n}])")
        offset += n
    entry = [
        "def _fused_seq_wrapper(_np, _kernels, _start, _end, *_flat):",
        f'    """Generated fused sequential wrapper: '
        f'{" + ".join(kernel_names)}."""',
    ]
    entry.extend(f"    {c}" for c in calls)
    return "\n".join(sections) + "\n" + "\n".join(entry) + "\n"


def compile_wrapper(source: str, name: str):
    """Compile generated wrapper source and return the function object."""
    namespace: dict = {}
    code = compile(source, filename=f"<op2-generated:{name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - our own generated source
    fns = [v for k, v in namespace.items() if callable(v) and not k.startswith("__")]
    if len(fns) != 1:  # pragma: no cover - generator always emits one def
        raise RuntimeError(f"generated module for {name} defined {len(fns)} functions")
    return fns[0]


def compile_module(source: str, name: str, entry: str):
    """Compile a multi-function generated module; return ``entry``.

    Unlike :func:`compile_wrapper` this allows helper defs (the fused
    wrappers' sections) alongside the entry point.
    """
    namespace: dict = {}
    code = compile(source, filename=f"<op2-generated:{name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - our own generated source
    fn = namespace.get(entry)
    if not callable(fn):  # pragma: no cover - generator always emits entry
        raise RuntimeError(f"generated module for {name} has no entry {entry!r}")
    return fn
