"""Vectorized code generation: scalar kernel → numpy whole-array source.

This generator performs the real "radically different code-path" trick
of the paper's tool-chain: the same elemental kernel source that the
sequential wrapper calls per element is *transformed* — every access
``p[i]`` to a per-element argument becomes a column access
``p[:, i]`` over a gathered block of elements, conditional expressions
become ``np.where``, math calls become numpy ufuncs — and wrapped in
gather / compute / scatter staging.

Two scatter policies share the generated compute body:

* ``"atomic"`` — ``np.add.at`` unbuffered scatter-add, the analogue of
  the paper's CUDA atomics strategy (correct under any conflicts);
* ``"colored"`` — plain fancy-indexed ``+=``, valid only for
  conflict-free element groups, the analogue of the OpenMP coloring
  execution (the caller supplies one color group at a time).

Wrapper calling convention::

    wrapper(_np, _rows, *flat)

with ``_rows`` an int index array of elements to execute and ``flat``
as produced by ``ParLoop.flatten_bindings``.
"""

from __future__ import annotations

import ast
import copy
from typing import Sequence

from repro.op2.access import Access
from repro.op2.kernel import Kernel, KernelParseError, MATH_WHITELIST


def generate_vectorized(kernel: Kernel, signature: Sequence[tuple],
                        scatter: str) -> str:
    """Emit vectorized wrapper source for ``kernel`` under ``signature``.

    ``scatter`` is ``"atomic"`` or ``"colored"`` (see module docstring).
    """
    if scatter not in ("atomic", "colored"):
        raise ValueError(f"scatter must be 'atomic' or 'colored', got {scatter!r}")
    params = kernel.params
    if len(params) != len(signature):
        raise KernelParseError(
            f"kernel {kernel.name!r} takes {len(params)} parameters but the "
            f"loop supplies {len(signature)} arguments"
        )

    wrapper_params: list[str] = []
    gather: list[str] = []
    scatter_lines: list[str] = []
    reduce_lines: list[str] = []
    elementwise: set[str] = set()

    for i, (pname, sig) in enumerate(zip(params, signature)):
        kind = sig[0]
        if kind == "gbl":
            _, access, dim = sig
            wrapper_params.append(f"_g{i}")
            if access is Access.READ:
                # broadcast constant: body uses it as a plain (dim,) array
                gather.append(f"{pname} = _g{i}")
            else:
                elementwise.add(pname)
                neutral = {
                    Access.INC: "0.0",
                    Access.MIN: "_np.inf",
                    Access.MAX: "-_np.inf",
                }[access]
                gather.append(
                    f"{pname} = _np.full((_n, {dim}), {neutral}, dtype=_g{i}.dtype)"
                )
                fold = {
                    Access.INC: f"_g{i} += {pname}.sum(axis=0)",
                    Access.MIN: f"_np.minimum(_g{i}, {pname}.min(axis=0), out=_g{i})",
                    Access.MAX: f"_np.maximum(_g{i}, {pname}.max(axis=0), out=_g{i})",
                }[access]
                reduce_lines.append(fold)
            continue

        _, access, addressing, dim, arity = sig
        elementwise.add(pname)
        wrapper_params.append(f"_a{i}")
        if addressing == "direct":
            gather.append(f"{pname} = _a{i}[_rows]")
            if access in (Access.WRITE, Access.RW, Access.INC):
                scatter_lines.append(f"_a{i}[_rows] = {pname}")
        elif addressing == "idx":
            wrapper_params.append(f"_m{i}")
            if access is Access.INC:
                gather.append(
                    f"{pname} = _np.zeros((_n, {dim}), dtype=_a{i}.dtype)"
                )
                if scatter == "atomic":
                    scatter_lines.append(f"_np.add.at(_a{i}, _m{i}[_rows], {pname})")
                else:
                    scatter_lines.append(f"_a{i}[_m{i}[_rows]] += {pname}")
            else:
                gather.append(f"{pname} = _a{i}[_m{i}[_rows]]")
                if access is Access.WRITE:
                    scatter_lines.append(f"_a{i}[_m{i}[_rows]] = {pname}")
        elif addressing == "all":
            wrapper_params.append(f"_m{i}")
            if access is Access.INC:
                gather.append(
                    f"{pname} = _np.zeros((_n, {arity}, {dim}), dtype=_a{i}.dtype)"
                )
                if scatter == "atomic":
                    scatter_lines.append(f"_np.add.at(_a{i}, _m{i}[_rows], {pname})")
                else:
                    scatter_lines.append(f"_a{i}[_m{i}[_rows]] += {pname}")
            else:
                gather.append(f"{pname} = _a{i}[_m{i}[_rows]]")
                if access is Access.WRITE:
                    scatter_lines.append(f"_a{i}[_m{i}[_rows]] = {pname}")
        else:  # pragma: no cover
            raise ValueError(f"unknown addressing {addressing!r}")

    body_src = _transform_body(kernel, elementwise)

    name = f"{kernel.name}_{scatter}_wrapper"
    lines = [
        f"def {name}(_np, _rows, {', '.join(wrapper_params)}):",
        f'    """Generated vectorized ({scatter}-scatter) wrapper for '
        f'{kernel.name}."""',
        "    _n = _rows.shape[0]",
        "    if _n == 0:",
        "        return",
        "    # ---- gather / stage ----",
    ]
    lines.extend(f"    {g}" for g in gather)
    lines.append("    # ---- transformed kernel body ----")
    lines.extend(f"    {b}" for b in body_src.splitlines())
    if scatter_lines:
        lines.append("    # ---- scatter ----")
        lines.extend(f"    {s}" for s in scatter_lines)
    if reduce_lines:
        lines.append("    # ---- fold reductions ----")
        lines.extend(f"    {r}" for r in reduce_lines)
    return "\n".join(lines) + "\n"


def generate_fused_vectorized(kernels: Sequence[Kernel],
                              signatures: Sequence[Sequence[tuple]],
                              scatter: str) -> str:
    """Emit one module executing several vectorized wrappers in order.

    Section composition (see ``seq.generate_fused_sequential``): each
    constituent wrapper keeps its exact generated body — renamed
    ``_f{j}_<name>`` — and the entry
    ``_fused_{scatter}_wrapper(_np, _rows, *_flat)`` runs the sections
    in program order over slices of the concatenated flat bindings, so
    results are bitwise-identical to separate execution.
    """
    from repro.op2.codegen.seq import flat_arg_count

    sections: list[str] = []
    calls: list[str] = []
    offset = 0
    for j, (kernel, sig) in enumerate(zip(kernels, signatures)):
        sub = generate_vectorized(kernel, sig, scatter)
        renamed = sub.replace(f"def {kernel.name}_{scatter}_wrapper(",
                              f"def _f{j}_{kernel.name}(", 1)
        sections.append(renamed)
        n = flat_arg_count(sig)
        calls.append(f"_f{j}_{kernel.name}(_np, _rows, "
                     f"*_flat[{offset}:{offset + n}])")
        offset += n
    entry = [
        f"def _fused_{scatter}_wrapper(_np, _rows, *_flat):",
        f'    """Generated fused vectorized ({scatter}-scatter) wrapper: '
        f'{" + ".join(k.name for k in kernels)}."""',
    ]
    entry.extend(f"    {c}" for c in calls)
    return "\n".join(sections) + "\n" + "\n".join(entry) + "\n"


def _transform_body(kernel: Kernel, elementwise: set[str]) -> str:
    """Rewrite the kernel body for whole-array execution."""
    fdef = copy.deepcopy(kernel.func_ast)
    stmts: list[ast.stmt] = []
    for stmt in fdef.body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring
        if isinstance(stmt, ast.Return):
            continue  # bare return at statement level: no-op here
        stmts.append(stmt)
    transformer = _Vectorizer(kernel.name, elementwise)
    new_stmts = [transformer.visit(s) for s in stmts]
    module = ast.Module(body=new_stmts, type_ignores=[])
    ast.fix_missing_locations(module)
    return ast.unparse(module)


class _Vectorizer(ast.NodeTransformer):
    """AST rewrite: per-element scalar code → whole-array numpy code."""

    def __init__(self, kernel_name: str, elementwise: set[str]) -> None:
        self.kernel_name = kernel_name
        self.elementwise = elementwise

    def _err(self, node: ast.AST, msg: str) -> KernelParseError:
        line = getattr(node, "lineno", "?")
        return KernelParseError(f"kernel {self.kernel_name!r}, line {line}: {msg}")

    # -- name hygiene --------------------------------------------------
    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id.startswith("_"):
            raise self._err(node, "names starting with '_' are reserved for "
                                  "generated code")
        return node

    # -- subscripts ------------------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
        base, chain = self._subscript_chain(node)
        if isinstance(base, ast.Name) and base.id in self.elementwise:
            indices: list[ast.expr] = [ast.Slice(lower=None, upper=None, step=None)]
            for idx in chain:
                if isinstance(idx, ast.Tuple):
                    indices.extend(self.visit(e) for e in idx.elts)
                else:
                    indices.append(self.visit(idx))
            for idx in indices[1:]:
                for sub in ast.walk(idx):
                    if isinstance(sub, ast.Name) and sub.id in self.elementwise:
                        raise self._err(
                            node,
                            f"index expressions must not reference per-element "
                            f"arguments (found {sub.id!r}); data-dependent "
                            f"indexing is not vectorizable",
                        )
            return ast.Subscript(
                value=ast.Name(id=base.id, ctx=ast.Load()),
                slice=ast.Tuple(elts=indices, ctx=ast.Load()),
                ctx=node.ctx,
            )
        return self.generic_visit(node)

    @staticmethod
    def _subscript_chain(node: ast.Subscript) -> tuple[ast.expr, list[ast.expr]]:
        """Unwind ``p[i][j]`` into (base, [i, j])."""
        chain: list[ast.expr] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Subscript):
            chain.append(cur.slice)
            cur = cur.value
        chain.reverse()
        return cur, chain

    # -- expressions ----------------------------------------------------
    def visit_IfExp(self, node: ast.IfExp) -> ast.AST:
        return ast.Call(
            func=_np_attr("where"),
            args=[self.visit(node.test), self.visit(node.body),
                  self.visit(node.orelse)],
            keywords=[],
        )

    def visit_Call(self, node: ast.Call) -> ast.AST:
        if not isinstance(node.func, ast.Name) or node.func.id not in MATH_WHITELIST:
            raise self._err(node, "only whitelisted math calls are allowed")
        attr = MATH_WHITELIST[node.func.id].split(".", 1)[1]
        return ast.Call(
            func=_np_attr(attr),
            args=[self.visit(a) for a in node.args],
            keywords=[],
        )

    def visit_BoolOp(self, node: ast.BoolOp) -> ast.AST:
        fname = "logical_and" if isinstance(node.op, ast.And) else "logical_or"
        values = [self.visit(v) for v in node.values]
        out = values[0]
        for v in values[1:]:
            out = ast.Call(func=_np_attr(fname), args=[out, v], keywords=[])
        return out

    def visit_UnaryOp(self, node: ast.UnaryOp) -> ast.AST:
        if isinstance(node.op, ast.Not):
            return ast.Call(func=_np_attr("logical_not"),
                            args=[self.visit(node.operand)], keywords=[])
        return self.generic_visit(node)

    def visit_For(self, node: ast.For) -> ast.AST:
        # `for i in range(K)` survives vectorization as-is: the loop
        # index stays a runtime scalar, so rewritten subscripts like
        # p[:, i] select one column per iteration. Don't rewrite the
        # range() call itself.
        node.body = [self.visit(s) for s in node.body]
        node.target = self.visit(node.target) if not isinstance(
            node.target, ast.Name) else node.target
        return node

    def visit_Compare(self, node: ast.Compare) -> ast.AST:
        if len(node.ops) > 1:
            raise self._err(node, "chained comparisons are not supported; "
                                  "split them with `and`")
        return self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> ast.AST:
        if node.value is None:
            raise self._err(node, "bare annotations are not allowed in kernels")
        return self.visit(
            ast.Assign(targets=[node.target], value=node.value,
                       lineno=node.lineno)
        )

    def visit_Return(self, node: ast.Return) -> ast.AST:
        raise self._err(node, "return inside kernel control flow is not "
                              "vectorizable")


def _np_attr(name: str) -> ast.Attribute:
    return ast.Attribute(value=ast.Name(id="_np", ctx=ast.Load()),
                         attr=name, ctx=ast.Load())
