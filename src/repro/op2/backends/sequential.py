"""Sequential backend: the generated scalar reference loop."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.op2.access import Access
from repro.op2.backends.base import ReductionBuffers
from repro.op2.codegen.seq import (compile_module, compile_wrapper,
                                   generate_fused_sequential,
                                   generate_sequential)
from repro.op2.config import current_config

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.parloop import ParLoop


class SequentialBackend:
    """Element-by-element execution calling the original kernel function.

    This is the semantic reference: every other backend's results are
    tested against it. The wrapper (gather views, call kernel, scatter
    staged vector args) is generated and cached per loop signature,
    mirroring OP2's "seq" code path.
    """

    name = "sequential"

    def execute(self, loop: "ParLoop", start: int, end: int,
                reductions: ReductionBuffers) -> None:
        signature = loop.signature()
        key = ("seq", signature)
        wrapper = loop.kernel.cached(key)
        if wrapper is None:
            source = generate_sequential(loop.kernel.name, signature)
            wrapper = compile_wrapper(source, loop.kernel.name)
            loop.kernel.store(key, wrapper, source)
        flat = loop.flatten_bindings(reductions)
        if current_config().check_access:
            flat = _readonly_read_args(loop, flat)
        wrapper(np, loop.kernel.scalar_fn, start, end, *flat)

    def execute_fused(self, loops: "list[ParLoop]", start: int, end: int,
                      reductions: list[ReductionBuffers]) -> None:
        """Run a fused loop group [start, end) through one module."""
        key = ("fused-seq",
               tuple((id(l.kernel), l.signature()) for l in loops))
        wrapper = loops[0].kernel.cached(key)
        if wrapper is None:
            source = generate_fused_sequential(
                [l.kernel.name for l in loops],
                [l.signature() for l in loops])
            wrapper = compile_module(source, "fused", "_fused_seq_wrapper")
            loops[0].kernel.store(key, wrapper, source)
        kernels = tuple(l.kernel.scalar_fn for l in loops)
        flat = [x for l, r in zip(loops, reductions)
                for x in l.flatten_bindings(r)]
        wrapper(np, kernels, start, end, *flat)


def _readonly_read_args(loop: "ParLoop", flat: list) -> list:
    """Replace READ dat storage with read-only views (debug mode).

    A kernel that writes through a READ argument then raises
    ``ValueError: assignment destination is read-only`` instead of
    silently corrupting shared data — the access-descriptor contract
    made enforceable.
    """
    out = list(flat)
    pos = 0
    for arg in loop.args:
        if arg.is_global:
            pos += 1
            continue
        if arg.access is Access.READ:
            view = out[pos].view()
            view.flags.writeable = False
            out[pos] = view
        pos += 1
        if arg.is_indirect:
            pos += 1
    return out
