"""Native backend: generate C, compile it, ``dlopen`` it, run it.

This closes the paper's Fig. 4 pipeline for real: the same validated
kernel AST every numpy backend interprets is emitted as a
self-contained C translation unit (:func:`~repro.op2.codegen.csource.
generate_native`), built with the host toolchain into a per-(kernel,
signature) shared object, and invoked through ``ctypes`` with raw
numpy data pointers — zero copies on either side of the call.

Execution strategies mirror the Python backends exactly:

* direct loops run a flat ``#pragma omp for`` over ``[start, end)``;
* loops with indirect writes execute the **block-color plan** (the
  OP2 OpenMP strategy): same-colored blocks share no write target and
  run team-parallel, colors are separated by barriers;
* the ``native-atomics`` backend instead cuts the range into
  ``Config.atomics_block``-sized chunks and resolves indirect
  increments with ``#pragma omp atomic`` — the compiled form of the
  CUDA strategy the numpy ``atomics`` backend simulates;
* under a lazy loop chain both native backends are *fusable*: a
  legality-proven group compiles into one wrapper whose single OpenMP
  region spans every section (``execute_fused``), with per-section
  plan arrays concatenated onto the ABI tail;
* global reductions accumulate into thread-private staging folded
  under ``#pragma omp critical``, into the caller's
  :class:`~repro.op2.backends.base.ReductionBuffers` partials — so
  distributed finalize/allreduce plumbing is untouched.

Compiled objects are cached on disk under ``~/.cache/repro-op2``
(override with ``REPRO_CACHE_DIR``), keyed by the SHA-256 of
``(source, compiler, flags)``, with in-process memoization in the
kernel's wrapper cache. The compiler is ``$REPRO_CC`` or the first of
``cc``/``gcc``/``clang`` on ``PATH``; flags are ``$REPRO_CFLAGS``
(default ``-O2 -fopenmp -ffp-contract=off`` — contraction off keeps
the elemental arithmetic bitwise-equal to numpy for correctly-rounded
operations).

Degradation is graceful by design: a missing toolchain, a compile
failure, or an unusable cached object warns **once** per process,
bumps the ``op2.native.fallback`` telemetry counter, and routes the
loop through the vectorized backend — every entry point keeps working
on a machine with no compiler at all.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.op2.access import Access
from repro.op2.backends.base import ReductionBuffers
from repro.op2.backends.vectorized import AtomicsBackend, VectorizedBackend
from repro.op2.codegen.csource import (generate_native, generate_native_fused,
                                       native_entry_name,
                                       native_fused_entry_name,
                                       native_is_planned)
from repro.op2.config import current_config
from repro.op2.kernel import KernelParseError
from repro.op2.plan import build_block_plan, clear_native_plan_arrays
from repro.telemetry.recorder import active_recorder, span

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.parloop import ParLoop

#: default compile flags (overridable via ``REPRO_CFLAGS``); the link
#: flags are always appended — the backend only builds shared objects
DEFAULT_CFLAGS = "-O2 -fopenmp -ffp-contract=off"
_LINK_FLAGS = ("-shared", "-fPIC")

#: serializes compiles across simulated ranks (threads in one process);
#: the disk cache makes every rank after the first a cheap hit
_compile_lock = threading.Lock()
_warn_lock = threading.Lock()
_warned = False


def reset_native_state() -> None:
    """Re-arm the warn-once notice and drop cached native plan arrays.

    Tests that switch toolchains (``REPRO_CC``/``REPRO_CACHE_DIR``)
    between runs call this; clearing the flattened plan-ABI arrays
    cached on live :class:`~repro.op2.plan.BlockPlan` objects keeps a
    backend switch from observing arrays built for a previous
    configuration.
    """
    global _warned
    with _warn_lock:
        _warned = False
    clear_native_plan_arrays()


def toolchain() -> tuple[str, list[str]] | None:
    """``(compiler, cflags)`` or None when no usable compiler exists.

    ``REPRO_CC`` is honoured strictly: if set but not executable the
    toolchain counts as missing rather than silently substituting a
    different compiler.
    """
    explicit = os.environ.get("REPRO_CC")
    if explicit:
        cc = shutil.which(explicit)
    else:
        cc = next(filter(None, (shutil.which(c)
                                for c in ("cc", "gcc", "clang"))), None)
    if cc is None:
        return None
    return cc, os.environ.get("REPRO_CFLAGS", DEFAULT_CFLAGS).split()


def cache_dir() -> Path:
    """On-disk compile cache root (``REPRO_CACHE_DIR`` overrides)."""
    return Path(os.environ.get("REPRO_CACHE_DIR")
                or "~/.cache/repro-op2").expanduser()


def _so_path(stem: str, source: str, cc: str, cflags: list[str]) -> Path:
    digest = hashlib.sha256(
        "\x00".join([source, cc, " ".join(cflags)]).encode()).hexdigest()[:16]
    return cache_dir() / f"{stem[:80]}_{digest}.so"


def compiled_path(kernel, nsig: tuple,
                  strategy: str = "blockcolor") -> Path | None:
    """Cache location of the compiled wrapper for ``(kernel, nsig)``.

    ``nsig`` is the loop's
    :meth:`~repro.op2.parloop.ParLoop.native_signature`. Returns None
    without a toolchain. The object need not exist yet — this is where
    the backend will look for (or build) it, which is what cache tests
    and cache-management tooling need.
    """
    tc = toolchain()
    if tc is None:
        return None
    cc, cflags = tc
    return _so_path(kernel.name, generate_native(kernel, nsig, strategy),
                    cc, cflags)


class _NativeEntry:
    """A loaded compiled wrapper plus everything needed to call it."""

    __slots__ = ("fn", "planned", "source", "path", "_lib")

    def __init__(self, fn, planned: bool, source: str, path: Path,
                 lib) -> None:
        self.fn = fn
        self.planned = planned
        self.source = source
        self.path = path
        self._lib = lib  # keeps the dlopen handle alive


class _FusedEntry:
    """A loaded fused-chain wrapper plus its per-section plan layout."""

    __slots__ = ("fn", "planned_idx", "source", "path", "_lib")

    def __init__(self, fn, planned_idx: tuple[int, ...], source: str,
                 path: Path, lib) -> None:
        self.fn = fn
        self.planned_idx = planned_idx  #: sections needing plan arrays
        self.source = source
        self.path = path
        self._lib = lib


class _Fallback:
    """Sentinel cached for a (kernel, signature) that cannot compile."""

    __slots__ = ("reason", "warn")

    def __init__(self, reason: str, warn: bool = True) -> None:
        self.reason = reason
        self.warn = warn


def _compile(source: str, cc: str, cflags: list[str],
             so_path: Path) -> str | None:
    """Build ``source`` into ``so_path`` atomically; error string on failure."""
    rec = active_recorder()
    with span("native.compile", "op2.native", path=so_path.name):
        try:
            so_path.parent.mkdir(parents=True, exist_ok=True)
            c_path = so_path.with_suffix(".c")
            c_path.write_text(source)
            fd, tmp = tempfile.mkstemp(suffix=".so", dir=so_path.parent)
            os.close(fd)
        except OSError as exc:
            return f"cache directory unusable: {exc}"
        cmd = [cc, *cflags, *_LINK_FLAGS, "-o", tmp, str(c_path), "-lm"]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True)
        except OSError as exc:
            os.unlink(tmp)
            return f"could not run {cc!r}: {exc}"
        if proc.returncode != 0:
            os.unlink(tmp)
            tail = proc.stderr.strip().splitlines()[-3:]
            return f"{cc} exited {proc.returncode}: " + " | ".join(tail)
        os.replace(tmp, so_path)  # atomic: concurrent ranks both win
    if rec is not None:
        rec.counter("op2.native.compile")
    return None


def _load_compiled(source: str, stem: str, entry_name: str
                   ) -> "tuple | _Fallback":
    """Compile (or reuse) ``source`` and dlopen it; ``(fn, path, lib)``."""
    rec = active_recorder()
    tc = toolchain()
    if tc is None:
        return _Fallback("no C toolchain (set REPRO_CC or install cc/gcc)")
    cc, cflags = tc
    so_path = _so_path(stem, source, cc, cflags)
    with _compile_lock:
        for attempt in (0, 1):
            if not so_path.exists():
                err = _compile(source, cc, cflags, so_path)
                if err is not None:
                    return _Fallback(err)
            elif rec is not None:
                rec.counter("op2.native.cache_hit_disk")
            try:
                with span("native.load", "op2.native", path=so_path.name):
                    lib = ctypes.CDLL(str(so_path))
                    fn = getattr(lib, entry_name)
            except (OSError, AttributeError):
                # corrupted or stale cache entry: rebuild exactly once
                if rec is not None:
                    rec.counter("op2.native.cache_corrupt")
                so_path.unlink(missing_ok=True)
                if attempt:
                    return _Fallback(
                        f"compiled object for {stem!r} unusable "
                        "even after recompiling")
                continue
            fn.restype = None
            return fn, so_path, lib
    raise AssertionError("unreachable")  # pragma: no cover


def _build_entry(kernel, nsig: tuple,
                 strategy: str = "blockcolor") -> "_NativeEntry | _Fallback":
    try:
        with span("native.generate", "op2.native", kernel=kernel.name):
            source = generate_native(kernel, nsig, strategy)
    except KernelParseError as exc:
        return _Fallback(f"C generation failed for {kernel.name!r}: {exc}")
    loaded = _load_compiled(source, kernel.name,
                            native_entry_name(kernel, strategy))
    if isinstance(loaded, _Fallback):
        return loaded
    fn, so_path, lib = loaded
    planned = strategy == "blockcolor" and native_is_planned(nsig)
    return _NativeEntry(fn, planned, source, so_path, lib)


def _build_fused_entry(kernels, nsigs: list[tuple],
                       strategy: str = "blockcolor"
                       ) -> "_FusedEntry | _Fallback":
    names = "+".join(k.name for k in kernels)
    try:
        with span("native.generate", "op2.native", kernel=names):
            source = generate_native_fused(kernels, nsigs, strategy)
    except KernelParseError as exc:
        return _Fallback(f"C generation failed for fused {names!r}: {exc}")
    stem = "fused_" + "_".join(k.name for k in kernels)
    loaded = _load_compiled(source, stem,
                            native_fused_entry_name(kernels, strategy))
    if isinstance(loaded, _Fallback):
        return loaded
    fn, so_path, lib = loaded
    planned_idx = tuple(
        j for j, nsig in enumerate(nsigs)
        if strategy == "blockcolor" and native_is_planned(nsig))
    return _FusedEntry(fn, planned_idx, source, so_path, lib)


class NativeBackend:
    """Compiled-C execution through the block-color plan (OpenMP)."""

    name = "native"
    strategy = "blockcolor"
    _fallback = VectorizedBackend()

    def execute(self, loop: "ParLoop", start: int, end: int,
                reductions: ReductionBuffers) -> None:
        entry = self._entry_for(loop)
        if isinstance(entry, _Fallback):
            if entry.warn:
                self._warn_and_count(entry.reason)
            self._fallback.execute(loop, start, end, reductions)
            return
        cfg = current_config()
        c_void_p, c_ll = ctypes.c_void_p, ctypes.c_longlong
        argv: list = self._loop_argv(loop, reductions)
        if entry.planned:
            plan = build_block_plan(loop.args, end,
                                    block_size=cfg.block_size)
            blk_lo, blk_hi, col_off = plan.native_arrays(start, end)
            argv += [c_void_p(blk_lo.ctypes.data),
                     c_void_p(blk_hi.ctypes.data),
                     c_void_p(col_off.ctypes.data),
                     c_ll(col_off.size - 1)]
        else:
            argv += [c_ll(start), c_ll(end)]
            if self.strategy == "atomics":
                block = max(1, cfg.atomics_block)
                argv.append(c_ll(block))
                rec = active_recorder()
                if rec is not None:
                    rec.counter("op2.native.atomics_loops")
                    rec.counter("op2.native.atomics_blocks",
                                max(0, -(-(end - start) // block)))
        argv.append(c_ll(cfg.native_threads))
        entry.fn(*argv)

    def execute_fused(self, loops: "list[ParLoop]", start: int, end: int,
                      reductions: list[ReductionBuffers]) -> None:
        """Run a legality-proven group through one fused wrapper.

        On any fallback (no toolchain, unsupported dtype, generation
        or compile failure) the group degrades to per-loop
        :meth:`execute` calls over the same range — bitwise-identical
        to the fused wrapper, so lazy-vs-eager equivalence holds on
        every degradation path.
        """
        entry = self._fused_entry_for(loops)
        rec = active_recorder()
        if isinstance(entry, _Fallback):
            if rec is not None:
                rec.counter("op2.native.fused_fallback")
            if entry.warn:
                self._warn_and_count(entry.reason)
            for loop, red in zip(loops, reductions):
                self.execute(loop, start, end, red)
            return
        cfg = current_config()
        c_void_p, c_ll = ctypes.c_void_p, ctypes.c_longlong
        argv: list = []
        for loop, red in zip(loops, reductions):
            argv.extend(self._loop_argv(loop, red))
        keepalive = []
        for j in entry.planned_idx:
            plan = build_block_plan(loops[j].args, end,
                                    block_size=cfg.block_size)
            blk_lo, blk_hi, col_off = plan.native_arrays(start, end)
            keepalive.append((blk_lo, blk_hi, col_off))
            argv += [c_void_p(blk_lo.ctypes.data),
                     c_void_p(blk_hi.ctypes.data),
                     c_void_p(col_off.ctypes.data),
                     c_ll(col_off.size - 1)]
        block = max(1, cfg.atomics_block)
        argv += [c_ll(start), c_ll(end), c_ll(block),
                 c_ll(cfg.native_threads)]
        entry.fn(*argv)
        del keepalive
        if rec is not None:
            rec.counter("op2.native.fused_groups")
            rec.counter("op2.native.fused_loops", len(loops))
            if self.strategy == "atomics":
                rec.counter("op2.native.atomics_loops", len(loops))
                rec.counter("op2.native.atomics_blocks",
                            len(loops) * max(0, -(-(end - start) // block)))

    @staticmethod
    def _loop_argv(loop: "ParLoop", reductions: ReductionBuffers) -> list:
        """The per-argument ctypes pointers of one loop's ABI slice."""
        c_void_p = ctypes.c_void_p
        argv: list = []
        for i, arg in enumerate(loop.args):
            if arg.is_global:
                buf = (reductions.buffer_for(i) if arg.is_reduction
                       else arg.data._data)
                argv.append(c_void_p(buf.ctypes.data))
                continue
            argv.append(c_void_p(arg.data._data.ctypes.data))
            if arg.is_indirect:
                argv.append(c_void_p(arg.map.values.ctypes.data))
        return argv

    def _entry_for(self, loop: "ParLoop") -> "_NativeEntry | _Fallback":
        unsupported = self._unsupported(loop)
        if unsupported is not None:
            return unsupported
        key = (self.name, loop.native_signature())
        entry = loop.kernel.cached(key)
        if entry is not None:
            rec = active_recorder()
            if rec is not None:
                rec.counter("op2.native.cache_hit_mem")
            return entry
        entry = _build_entry(loop.kernel, key[1], self.strategy)
        source = entry.source if isinstance(entry, _NativeEntry) else ""
        loop.kernel.store(key, entry, source)
        return entry

    def _fused_entry_for(self, loops: "list[ParLoop]"
                         ) -> "_FusedEntry | _Fallback":
        for loop in loops:
            unsupported = self._unsupported(loop)
            if unsupported is not None:
                return unsupported
        key = (f"{self.name}-fused",
               tuple((id(l.kernel), l.native_signature()) for l in loops))
        entry = loops[0].kernel.cached(key)
        if entry is not None:
            rec = active_recorder()
            if rec is not None:
                rec.counter("op2.native.cache_hit_mem")
            return entry
        entry = _build_fused_entry([l.kernel for l in loops],
                                   [l.native_signature() for l in loops],
                                   self.strategy)
        source = entry.source if isinstance(entry, _FusedEntry) else ""
        loops[0].kernel.store(key, entry, source)
        return entry

    def _unsupported(self, loop: "ParLoop") -> "_Fallback | None":
        """The compiled ABI is float64/contiguous only; anything else
        routes to the fallback backend (counted, but not warned — it
        is a capability gap, not an environment failure)."""
        for arg in loop.args:
            arr = arg.data._data
            if arr.dtype != np.float64 or not arr.flags.c_contiguous:
                rec = active_recorder()
                if rec is not None:
                    rec.counter("op2.native.unsupported")
                return _Fallback(
                    f"argument {arg.data.name!r} is not contiguous float64",
                    warn=False)
        return None

    def _warn_and_count(self, reason: str) -> None:
        global _warned
        rec = active_recorder()
        if rec is not None:
            rec.counter("op2.native.fallback")
        with _warn_lock:
            if _warned:
                return
            _warned = True
        warnings.warn(
            f"{self.name} backend unavailable ({reason}); "
            f"falling back to the {self._fallback.name} backend",
            RuntimeWarning, stacklevel=3)


class NativeAtomicsBackend(NativeBackend):
    """Compiled-C execution with chunked ``#pragma omp atomic`` scatter.

    The compiled analogue of the numpy :class:`~repro.op2.backends.
    vectorized.AtomicsBackend` (itself the CUDA-grid simulation): the
    iteration space is cut into :func:`~repro.op2.backends.vectorized.
    atomics_chunks` of ``Config.atomics_block`` elements, every
    indirect increment is an ``#pragma omp atomic``, and no
    block-color plan is ever built. Falls back to the numpy atomics
    backend — not vectorized — so degraded runs keep the same
    chunk-serial accumulation semantics.
    """

    name = "native-atomics"
    strategy = "atomics"
    _fallback = AtomicsBackend()

    def _unsupported(self, loop: "ParLoop") -> "_Fallback | None":
        base = super()._unsupported(loop)
        if base is not None:
            return base
        # atomics only resolve increment races: an indirect WRITE/RW
        # would be a plain multi-thread data race in the compiled
        # wrapper, while the numpy simulation stays deterministic —
        # route such loops to the simulation
        for arg in loop.args:
            if (arg.is_indirect
                    and arg.access not in (Access.READ, Access.INC)):
                rec = active_recorder()
                if rec is not None:
                    rec.counter("op2.native.unsupported")
                return _Fallback(
                    f"indirect {arg.access.name} on {arg.data.name!r} "
                    "needs a plan; atomics only cover increments",
                    warn=False)
        return None
