"""Native backend: generate C, compile it, ``dlopen`` it, run it.

This closes the paper's Fig. 4 pipeline for real: the same validated
kernel AST every numpy backend interprets is emitted as a
self-contained C translation unit (:func:`~repro.op2.codegen.csource.
generate_native`), built with the host toolchain into a per-(kernel,
signature) shared object, and invoked through ``ctypes`` with raw
numpy data pointers — zero copies on either side of the call.

Execution strategies mirror the Python backends exactly:

* direct loops run a flat ``#pragma omp for`` over ``[start, end)``;
* loops with indirect writes execute the **block-color plan** (the
  OP2 OpenMP strategy): same-colored blocks share no write target and
  run team-parallel, colors are separated by barriers;
* global reductions accumulate into thread-private staging folded
  under ``#pragma omp critical``, into the caller's
  :class:`~repro.op2.backends.base.ReductionBuffers` partials — so
  distributed finalize/allreduce plumbing is untouched.

Compiled objects are cached on disk under ``~/.cache/repro-op2``
(override with ``REPRO_CACHE_DIR``), keyed by the SHA-256 of
``(source, compiler, flags)``, with in-process memoization in the
kernel's wrapper cache. The compiler is ``$REPRO_CC`` or the first of
``cc``/``gcc``/``clang`` on ``PATH``; flags are ``$REPRO_CFLAGS``
(default ``-O2 -fopenmp -ffp-contract=off`` — contraction off keeps
the elemental arithmetic bitwise-equal to numpy for correctly-rounded
operations).

Degradation is graceful by design: a missing toolchain, a compile
failure, or an unusable cached object warns **once** per process,
bumps the ``op2.native.fallback`` telemetry counter, and routes the
loop through the vectorized backend — every entry point keeps working
on a machine with no compiler at all.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.op2.backends.base import ReductionBuffers
from repro.op2.backends.vectorized import VectorizedBackend
from repro.op2.codegen.csource import (generate_native, native_entry_name,
                                       native_is_planned)
from repro.op2.config import current_config
from repro.op2.kernel import KernelParseError
from repro.op2.plan import build_block_plan
from repro.telemetry.recorder import active_recorder, span

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.parloop import ParLoop

#: default compile flags (overridable via ``REPRO_CFLAGS``); the link
#: flags are always appended — the backend only builds shared objects
DEFAULT_CFLAGS = "-O2 -fopenmp -ffp-contract=off"
_LINK_FLAGS = ("-shared", "-fPIC")

#: serializes compiles across simulated ranks (threads in one process);
#: the disk cache makes every rank after the first a cheap hit
_compile_lock = threading.Lock()
_warn_lock = threading.Lock()
_warned = False


def reset_native_state() -> None:
    """Re-arm the warn-once fallback notice (tests)."""
    global _warned
    with _warn_lock:
        _warned = False


def toolchain() -> tuple[str, list[str]] | None:
    """``(compiler, cflags)`` or None when no usable compiler exists.

    ``REPRO_CC`` is honoured strictly: if set but not executable the
    toolchain counts as missing rather than silently substituting a
    different compiler.
    """
    explicit = os.environ.get("REPRO_CC")
    if explicit:
        cc = shutil.which(explicit)
    else:
        cc = next(filter(None, (shutil.which(c)
                                for c in ("cc", "gcc", "clang"))), None)
    if cc is None:
        return None
    return cc, os.environ.get("REPRO_CFLAGS", DEFAULT_CFLAGS).split()


def cache_dir() -> Path:
    """On-disk compile cache root (``REPRO_CACHE_DIR`` overrides)."""
    return Path(os.environ.get("REPRO_CACHE_DIR")
                or "~/.cache/repro-op2").expanduser()


def _so_path(kernel, source: str, cc: str, cflags: list[str]) -> Path:
    digest = hashlib.sha256(
        "\x00".join([source, cc, " ".join(cflags)]).encode()).hexdigest()[:16]
    return cache_dir() / f"{kernel.name}_{digest}.so"


def compiled_path(kernel, nsig: tuple) -> Path | None:
    """Cache location of the compiled wrapper for ``(kernel, nsig)``.

    ``nsig`` is the loop's
    :meth:`~repro.op2.parloop.ParLoop.native_signature`. Returns None
    without a toolchain. The object need not exist yet — this is where
    the backend will look for (or build) it, which is what cache tests
    and cache-management tooling need.
    """
    tc = toolchain()
    if tc is None:
        return None
    cc, cflags = tc
    return _so_path(kernel, generate_native(kernel, nsig), cc, cflags)


class _NativeEntry:
    """A loaded compiled wrapper plus everything needed to call it."""

    __slots__ = ("fn", "planned", "source", "path", "_lib")

    def __init__(self, fn, planned: bool, source: str, path: Path,
                 lib) -> None:
        self.fn = fn
        self.planned = planned
        self.source = source
        self.path = path
        self._lib = lib  # keeps the dlopen handle alive


class _Fallback:
    """Sentinel cached for a (kernel, signature) that cannot compile."""

    __slots__ = ("reason", "warn")

    def __init__(self, reason: str, warn: bool = True) -> None:
        self.reason = reason
        self.warn = warn


def _compile(source: str, cc: str, cflags: list[str],
             so_path: Path) -> str | None:
    """Build ``source`` into ``so_path`` atomically; error string on failure."""
    rec = active_recorder()
    with span("native.compile", "op2.native", path=so_path.name):
        try:
            so_path.parent.mkdir(parents=True, exist_ok=True)
            c_path = so_path.with_suffix(".c")
            c_path.write_text(source)
            fd, tmp = tempfile.mkstemp(suffix=".so", dir=so_path.parent)
            os.close(fd)
        except OSError as exc:
            return f"cache directory unusable: {exc}"
        cmd = [cc, *cflags, *_LINK_FLAGS, "-o", tmp, str(c_path), "-lm"]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True)
        except OSError as exc:
            os.unlink(tmp)
            return f"could not run {cc!r}: {exc}"
        if proc.returncode != 0:
            os.unlink(tmp)
            tail = proc.stderr.strip().splitlines()[-3:]
            return f"{cc} exited {proc.returncode}: " + " | ".join(tail)
        os.replace(tmp, so_path)  # atomic: concurrent ranks both win
    if rec is not None:
        rec.counter("op2.native.compile")
    return None


def _build_entry(kernel, nsig: tuple) -> "_NativeEntry | _Fallback":
    rec = active_recorder()
    tc = toolchain()
    if tc is None:
        return _Fallback("no C toolchain (set REPRO_CC or install cc/gcc)")
    cc, cflags = tc
    try:
        with span("native.generate", "op2.native", kernel=kernel.name):
            source = generate_native(kernel, nsig)
    except KernelParseError as exc:
        return _Fallback(f"C generation failed for {kernel.name!r}: {exc}")
    so_path = _so_path(kernel, source, cc, cflags)

    with _compile_lock:
        for attempt in (0, 1):
            if not so_path.exists():
                err = _compile(source, cc, cflags, so_path)
                if err is not None:
                    return _Fallback(err)
            elif rec is not None:
                rec.counter("op2.native.cache_hit_disk")
            try:
                with span("native.load", "op2.native", path=so_path.name):
                    lib = ctypes.CDLL(str(so_path))
                    fn = getattr(lib, native_entry_name(kernel))
            except (OSError, AttributeError):
                # corrupted or stale cache entry: rebuild exactly once
                if rec is not None:
                    rec.counter("op2.native.cache_corrupt")
                so_path.unlink(missing_ok=True)
                if attempt:
                    return _Fallback(
                        f"compiled object for {kernel.name!r} unusable "
                        "even after recompiling")
                continue
            fn.restype = None
            return _NativeEntry(fn, native_is_planned(nsig), source,
                                so_path, lib)
    raise AssertionError("unreachable")  # pragma: no cover


class NativeBackend:
    """Compiled-C execution through the block-color plan (OpenMP)."""

    name = "native"
    _fallback = VectorizedBackend()

    def execute(self, loop: "ParLoop", start: int, end: int,
                reductions: ReductionBuffers) -> None:
        entry = self._entry_for(loop)
        if isinstance(entry, _Fallback):
            if entry.warn:
                self._warn_and_count(entry.reason)
            self._fallback.execute(loop, start, end, reductions)
            return
        cfg = current_config()
        c_void_p, c_ll = ctypes.c_void_p, ctypes.c_longlong
        argv: list = []
        for i, arg in enumerate(loop.args):
            if arg.is_global:
                buf = (reductions.buffer_for(i) if arg.is_reduction
                       else arg.data._data)
                argv.append(c_void_p(buf.ctypes.data))
                continue
            argv.append(c_void_p(arg.data._data.ctypes.data))
            if arg.is_indirect:
                argv.append(c_void_p(arg.map.values.ctypes.data))
        if entry.planned:
            plan = build_block_plan(loop.args, end,
                                    block_size=cfg.block_size)
            blk_lo, blk_hi, col_off = plan.native_arrays(start, end)
            argv += [c_void_p(blk_lo.ctypes.data),
                     c_void_p(blk_hi.ctypes.data),
                     c_void_p(col_off.ctypes.data),
                     c_ll(col_off.size - 1)]
        else:
            argv += [c_ll(start), c_ll(end)]
        argv.append(c_ll(cfg.native_threads))
        entry.fn(*argv)

    def _entry_for(self, loop: "ParLoop") -> "_NativeEntry | _Fallback":
        unsupported = self._unsupported(loop)
        if unsupported is not None:
            return unsupported
        key = ("native", loop.native_signature())
        entry = loop.kernel.cached(key)
        if entry is not None:
            rec = active_recorder()
            if rec is not None:
                rec.counter("op2.native.cache_hit_mem")
            return entry
        entry = _build_entry(loop.kernel, key[1])
        source = entry.source if isinstance(entry, _NativeEntry) else ""
        loop.kernel.store(key, entry, source)
        return entry

    @staticmethod
    def _unsupported(loop: "ParLoop") -> "_Fallback | None":
        """The compiled ABI is float64/contiguous only; anything else
        routes to the vectorized backend (counted, but not warned — it
        is a capability gap, not an environment failure)."""
        for arg in loop.args:
            arr = arg.data._data
            if arr.dtype != np.float64 or not arr.flags.c_contiguous:
                rec = active_recorder()
                if rec is not None:
                    rec.counter("op2.native.unsupported")
                return _Fallback(
                    f"argument {arg.data.name!r} is not contiguous float64",
                    warn=False)
        return None

    @staticmethod
    def _warn_and_count(reason: str) -> None:
        global _warned
        rec = active_recorder()
        if rec is not None:
            rec.counter("op2.native.fallback")
        with _warn_lock:
            if _warned:
                return
            _warned = True
        warnings.warn(
            f"native backend unavailable ({reason}); "
            "falling back to the vectorized backend",
            RuntimeWarning, stacklevel=3)
