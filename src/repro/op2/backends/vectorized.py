"""Vectorized backends: whole-array execution of the transformed kernel.

Three backends share the vector code generator and differ only in how
they slice the iteration space and resolve scatter conflicts:

* :class:`VectorizedBackend` — one shot over the whole range with
  ``np.add.at`` scatter (single-source SIMD analogue);
* :class:`ColoringBackend` — per conflict-free color group with plain
  fancy ``+=`` scatter (OpenMP coloring analogue);
* :class:`AtomicsBackend` — fixed-size chunks with ``np.add.at``
  scatter, modelling a GPU grid of thread blocks (CUDA analogue).
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

import numpy as np

from repro.op2.backends.base import ReductionBuffers
from repro.op2.codegen.seq import compile_module, compile_wrapper
from repro.op2.codegen.vector import (generate_fused_vectorized,
                                      generate_vectorized)
from repro.op2.config import current_config
from repro.op2.plan import build_plan

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.parloop import ParLoop


def _get_wrapper(loop: "ParLoop", scatter: str):
    signature = loop.signature()
    key = ("vec", scatter, signature)
    wrapper = loop.kernel.cached(key)
    if wrapper is None:
        source = generate_vectorized(loop.kernel, signature, scatter)
        wrapper = compile_wrapper(source, loop.kernel.name)
        loop.kernel.store(key, wrapper, source)
    return wrapper


def _get_fused_wrapper(loops: "list[ParLoop]", scatter: str):
    key = ("fused-vec", scatter,
           tuple((id(l.kernel), l.signature()) for l in loops))
    wrapper = loops[0].kernel.cached(key)
    if wrapper is None:
        source = generate_fused_vectorized(
            [l.kernel for l in loops],
            [l.signature() for l in loops], scatter)
        wrapper = compile_module(source, "fused",
                                 f"_fused_{scatter}_wrapper")
        loops[0].kernel.store(key, wrapper, source)
    return wrapper


def atomics_chunks(start: int, end: int, block: int):
    """Yield the ``(lo, hi)`` simulated thread-block ranges of [start, end).

    Shared by the numpy ``atomics`` backend and the compiled
    ``native-atomics`` backend so both slice the iteration space into
    the *same* chunks (``Config.atomics_block`` elements each) — the
    accumulation semantics the differential tests pin are defined in
    terms of these ranges.
    """
    block = max(1, block)
    for lo in range(start, end, block):
        yield lo, min(lo + block, end)


#: per-kernel row-index arrays, keyed (start, end); lives beside the
#: kernel's wrapper cache but dies with the kernel (weak keys)
_rows_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _get_rows(kernel, start: int, end: int) -> np.ndarray:
    """The row-index array for [start, end), cached per kernel.

    Allocating ``np.arange`` per call showed up in loop-dispatch
    profiles; extents are fixed per (set, loop shape), so the array is
    cached alongside the kernel's compiled wrapper. The array is
    marked read-only — wrappers only ever index with it.
    """
    per_kernel = _rows_cache.get(kernel)
    if per_kernel is None:
        per_kernel = _rows_cache[kernel] = {}
    rows = per_kernel.get((start, end))
    if rows is None:
        rows = np.arange(start, end, dtype=np.int64)
        rows.setflags(write=False)
        per_kernel[(start, end)] = rows
    return rows


class VectorizedBackend:
    """Whole-extent numpy execution with unbuffered atomic-add scatter."""

    name = "vectorized"

    def execute(self, loop: "ParLoop", start: int, end: int,
                reductions: ReductionBuffers) -> None:
        wrapper = _get_wrapper(loop, "atomic")
        flat = loop.flatten_bindings(reductions)
        wrapper(np, _get_rows(loop.kernel, start, end), *flat)

    def execute_fused(self, loops: "list[ParLoop]", start: int, end: int,
                      reductions: list[ReductionBuffers]) -> None:
        wrapper = _get_fused_wrapper(loops, "atomic")
        flat = [x for l, r in zip(loops, reductions)
                for x in l.flatten_bindings(r)]
        wrapper(np, _get_rows(loops[0].kernel, start, end), *flat)


class ColoringBackend:
    """Conflict-free color groups with plain ``+=`` scatter.

    The plan colors the whole range [0, end); each group is filtered
    to the executed segment so redundant-halo segments stay separable.
    Loops without indirect writes need no coloring and run in one shot.
    """

    name = "coloring"

    def execute(self, loop: "ParLoop", start: int, end: int,
                reductions: ReductionBuffers) -> None:
        plan = build_plan(loop.args, end)
        flat = loop.flatten_bindings(reductions)
        if plan is None:
            wrapper = _get_wrapper(loop, "atomic")
            wrapper(np, _get_rows(loop.kernel, start, end), *flat)
            return
        wrapper = _get_wrapper(loop, "colored")
        for group in plan.color_groups:
            if start > 0:
                group = group[group >= start]
            if group.size:
                wrapper(np, group, *flat)


class AtomicsBackend:
    """Chunked execution with atomic-add scatter (CUDA grid analogue).

    The chunk size (``Config.atomics_block``) is the simulated
    thread-block extent; the performance model uses the resulting
    block counts when projecting GPU runtimes.
    """

    name = "atomics"

    def execute(self, loop: "ParLoop", start: int, end: int,
                reductions: ReductionBuffers) -> None:
        wrapper = _get_wrapper(loop, "atomic")
        flat = loop.flatten_bindings(reductions)
        for lo, hi in atomics_chunks(start, end,
                                     current_config().atomics_block):
            wrapper(np, _get_rows(loop.kernel, lo, hi), *flat)

    def execute_fused(self, loops: "list[ParLoop]", start: int, end: int,
                      reductions: list[ReductionBuffers]) -> None:
        # chunk-interleaved section order is safe: the chain's fusion
        # legality check only admits element-local cross-loop deps
        wrapper = _get_fused_wrapper(loops, "atomic")
        flat = [x for l, r in zip(loops, reductions)
                for x in l.flatten_bindings(r)]
        for lo, hi in atomics_chunks(start, end,
                                     current_config().atomics_block):
            wrapper(np, _get_rows(loops[0].kernel, lo, hi), *flat)
