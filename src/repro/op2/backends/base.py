"""Backend protocol and reduction-buffer plumbing shared by all backends."""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.op2.access import Access

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.parloop import ParLoop
    from repro.smpi import SimComm


class ReductionBuffers:
    """Neutral-initialized partial buffers for a loop's Global reductions.

    Backends fold element contributions into these buffers; the loop
    finalizer combines them into the Globals — with an allreduce first
    in distributed runs, so every rank ends with the identical value.
    A second, discarded instance absorbs contributions from redundant
    exec-halo execution, which must not count twice.
    """

    _OPS = {Access.INC: "sum", Access.MIN: "min", Access.MAX: "max"}

    def __init__(self, args) -> None:
        self.buffers: dict[int, np.ndarray] = {}
        self._args = args
        for i, arg in enumerate(args):
            if arg.is_reduction:
                self.buffers[i] = arg.data.neutral(arg.access)

    def buffer_for(self, index: int) -> np.ndarray:
        return self.buffers[index]

    def finalize(self, comm: "SimComm | None") -> None:
        """Combine partials into the Globals (allreduce first if distributed)."""
        for i, buf in self.buffers.items():
            arg = self._args[i]
            if comm is not None and comm.size > 1:
                buf = comm.allreduce(buf, self._OPS[arg.access])
            arg.data.combine(arg.access, buf)


class Backend(Protocol):
    """A compute strategy executing a range of a loop's elements."""

    name: str

    def execute(self, loop: "ParLoop", start: int, end: int,
                reductions: ReductionBuffers) -> None:
        """Run elements [start, end) of ``loop``.

        Must fold reduction contributions into ``reductions`` and apply
        all dat writes in place.
        """
        ...  # pragma: no cover
