"""Block-coloring backend: OP2's OpenMP execution shape.

OP2's OpenMP plan partitions the iteration space into contiguous
blocks, colors blocks that share indirect-write targets, and runs one
color's blocks concurrently on the thread team. We reproduce that
shape: same-colored blocks are provably safe to run in any order or in
parallel (the block plan merges *all* writing columns per target set
into one conflict unit), and each block executes vectorized. Within a
block, elements may still conflict with each other — OP2 resolves that
with a nested element coloring; we use the atomic scatter, which is
equivalent and simpler — so the cross-block independence is what the
plan guarantees, exactly as a real thread team requires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.op2.backends.base import ReductionBuffers
from repro.op2.backends.vectorized import _get_wrapper
from repro.op2.config import current_config
from repro.op2.plan import build_block_plan

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.parloop import ParLoop


class BlockColorBackend:
    """Per-block execution ordered by block color (OpenMP-plan analogue).

    Within a block, elements may still conflict (blocks are contiguous
    index ranges, not conflict-free sets), so the intra-block scatter
    is atomic; *across* same-colored blocks the plan guarantees no
    shared targets — exactly the property OP2's OpenMP backend relies
    on to run one color's blocks on many threads.
    """

    name = "blockcolor"

    def execute(self, loop: "ParLoop", start: int, end: int,
                reductions: ReductionBuffers) -> None:
        block_size = max(1, current_config().block_size)
        plan = build_block_plan(loop.args, end, block_size=block_size)
        flat = loop.flatten_bindings(reductions)
        wrapper = _get_wrapper(loop, "atomic")
        if plan is None:
            wrapper(np, np.arange(start, end, dtype=np.int64), *flat)
            return
        for color in range(plan.ncolors):
            for lo, hi in plan.blocks_of_color(color):
                lo = max(lo, start)
                hi = min(hi, end)
                if lo < hi:
                    wrapper(np, np.arange(lo, hi, dtype=np.int64), *flat)
