"""Race-sanitizer backend: executes coloring plans while verifying them.

The ``coloring``/``blockcolor`` backends *trust* their plan: a color
group is scattered with plain fancy ``+=``, which silently drops
increments if two elements of the group alias one dat entry. On real
shared-memory hardware the same bug is a data race — wrong answers,
no diagnostics. The sanitizer runs the identical colored execution but
first replays every scatter statement symbolically, recording the
per-element write-set (which dat entries each element touches), and
fails loudly with a :class:`RaceError` naming the kernel, the color,
the conflicting elements and the shared target. It also checks that
the color groups partition the iteration space — a plan that skips or
double-executes elements is as wrong as a racy one.

This is the testing analogue of running the OpenMP build under a
thread sanitizer, except deterministic and exact: every conflict is
found on the first run, not when the scheduler happens to interleave
badly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.op2.backends.base import ReductionBuffers
from repro.op2.backends.vectorized import _get_wrapper
from repro.op2.plan import BlockPlan, Plan, _Unit, build_plan, conflict_units

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.parloop import ParLoop

__all__ = ["RaceError", "RaceFinding", "SanitizerBackend",
           "check_block_plan", "check_plan"]


@dataclass(frozen=True)
class RaceFinding:
    """Two or more same-color elements writing one dat entry."""

    unit: str                 #: scatter statement, e.g. "res via edge2cell[*]"
    color: int
    target: int               #: the shared dat row
    elements: tuple[int, ...]  #: the conflicting elements (or blocks)

    def describe(self) -> str:
        elems = ", ".join(str(e) for e in self.elements)
        return (f"color {self.color}: elements [{elems}] all scatter into "
                f"{self.unit} row {self.target}")


class RaceError(RuntimeError):
    """A coloring plan allows a same-color write-write conflict.

    ``findings`` holds one :class:`RaceFinding` per conflicting
    (scatter statement, color, target) triple.
    """

    def __init__(self, message: str, findings=()) -> None:
        super().__init__(message)
        self.findings = list(findings)


def _duplicate_targets(targets: np.ndarray, owners: np.ndarray,
                       unit_label: str, color: int) -> list[RaceFinding]:
    """Findings for every target hit by more than one distinct owner."""
    if targets.size < 2:
        return []
    order = np.argsort(targets, kind="stable")
    t, o = targets[order], owners[order]
    findings = []
    i = 0
    while i < t.size:
        j = i + 1
        while j < t.size and t[j] == t[i]:
            j += 1
        if j - i > 1:
            who = np.unique(o[i:j])
            if who.size > 1:
                findings.append(RaceFinding(
                    unit=unit_label, color=color, target=int(t[i]),
                    elements=tuple(int(x) for x in who)))
        i = j
    return findings


def check_plan(args, plan: Plan, start: int = 0) -> list[RaceFinding]:
    """Write-set audit of an element-coloring plan.

    For every scatter statement (conflict unit) and every color group,
    records which dat rows each element writes and reports every row
    touched by two distinct elements of the group — exactly the pairs
    the colored backend would race on. ``start`` restricts the audit
    to the executed segment (the redundant-halo phase runs
    ``[size, exec_size)`` separately from ``[0, size)``).
    """
    findings: list[RaceFinding] = []
    for unit in conflict_units(args, plan.extent):
        for color, group in enumerate(plan.color_groups):
            if start > 0:
                group = group[group >= start]
            if group.size < 2:
                continue
            targets = np.concatenate([col[group] for col in unit.columns])
            owners = np.concatenate([group] * len(unit.columns))
            findings.extend(
                _duplicate_targets(targets, owners, unit.label, color))
    return findings


def check_block_plan(args, plan: BlockPlan) -> list[RaceFinding]:
    """Write-set audit of a block-coloring plan.

    Same-colored *blocks* execute concurrently while each block runs
    serially, so here a conflict is one dat row written from two
    *different* blocks of the same color — intra-block sharing is fine.
    All writing columns per target set merge into one unit, mirroring
    :func:`~repro.op2.plan.build_block_plan`.
    """
    merged: dict[int, _Unit] = {}
    labels: dict[int, list[str]] = {}
    for u in conflict_units(args, plan.extent):
        slot = merged.setdefault(u.target_id,
                                 _Unit(u.target_size, [], u.target_id))
        slot.columns.extend(u.columns)
        labels.setdefault(u.target_id, []).append(u.label)
    findings: list[RaceFinding] = []
    block_of = np.arange(plan.extent, dtype=np.int64) // plan.block_size
    for unit in merged.values():
        label = " + ".join(labels[unit.target_id])
        for color in range(plan.ncolors):
            rows = np.concatenate(
                [np.arange(s, e, dtype=np.int64)
                 for s, e in plan.blocks_of_color(color)] or
                [np.empty(0, dtype=np.int64)])
            if rows.size < 2:
                continue
            targets = np.concatenate([col[rows] for col in unit.columns])
            owners = np.concatenate([block_of[rows]] * len(unit.columns))
            findings.extend(_duplicate_targets(targets, owners, label, color))
    return findings


def _verify_partition(plan: Plan, kernel_name: str, start: int,
                      end: int) -> None:
    """The color groups must cover [start, end) exactly once each."""
    groups = [g[g >= start] if start > 0 else g for g in plan.color_groups]
    executed = np.sort(np.concatenate(groups)) if groups else np.empty(0, int)
    expected = np.arange(start, end, dtype=executed.dtype)
    if executed.shape != expected.shape or not np.array_equal(executed, expected):
        raise RaceError(
            f"sanitizer: plan for par_loop({kernel_name}) does not cover "
            f"the iteration space [{start}, {end}): color groups execute "
            f"{executed.size} of {expected.size} elements (with duplicates "
            f"and/or gaps)")


class SanitizerBackend:
    """Colored execution with per-element write-set verification.

    Numerically identical to the ``coloring`` backend (same generated
    wrapper, same group order) but every plan is audited first; a racy
    or non-partitioning plan raises :class:`RaceError` before any data
    is touched. Slower — run it in tests and debugging sessions, not
    production sweeps.
    """

    name = "sanitizer"

    def execute(self, loop: "ParLoop", start: int, end: int,
                reductions: ReductionBuffers) -> None:
        plan = build_plan(loop.args, end)
        flat = loop.flatten_bindings(reductions)
        if plan is None:  # no indirect writes: nothing can race
            wrapper = _get_wrapper(loop, "atomic")
            wrapper(np, np.arange(start, end, dtype=np.int64), *flat)
            return
        _verify_partition(plan, loop.kernel.name, start, end)
        findings = check_plan(loop.args, plan, start=start)
        if findings:
            lines = [f"sanitizer: race detected in par_loop"
                     f"({loop.kernel.name}): {len(findings)} same-color "
                     f"write conflict(s)"]
            lines += [f"  {f.describe()}" for f in findings[:20]]
            if len(findings) > 20:
                lines.append(f"  ... and {len(findings) - 20} more")
            raise RaceError("\n".join(lines), findings)
        wrapper = _get_wrapper(loop, "colored")
        for group in plan.color_groups:
            if start > 0:
                group = group[group >= start]
            if group.size:
                wrapper(np, group, *flat)
