"""Backend registry: the generated parallelizations a loop can run under.

Each backend implements one of the paper's data-race-resolution
strategies for indirect increments:

==============  ========================================================
``sequential``  scalar reference loop (generated gather/call wrapper)
``vectorized``  whole-extent numpy execution, ``np.add.at`` scatter —
                the single-source SIMD analogue
``coloring``    conflict-free color groups with plain ``+=`` scatter —
                the OpenMP analogue
``atomics``     fixed-size chunks ("thread blocks") with ``np.add.at``
                scatter — the CUDA analogue
``blockcolor``  contiguous blocks ordered by block color — OP2's
                OpenMP *plan* shape (colors are team-parallel-safe)
``sanitizer``   colored execution with per-element write-set auditing —
                raises :class:`~repro.op2.backends.sanitizer.RaceError`
                on any same-color conflict instead of corrupting data
``native``      generated C compiled with the host toolchain and run
                through ``ctypes`` — direct loops flat-parallel,
                indirect loops via the block-color plan; falls back to
                ``vectorized`` when no compiler is available
``native-atomics``  generated C with chunked ``#pragma omp atomic``
                increments (the compiled CUDA-strategy analogue of
                ``atomics``); falls back to ``atomics`` so degraded
                runs keep the same accumulation semantics
==============  ========================================================

The ``native`` and ``native-atomics`` backends are also *fusable*:
under a lazy loop chain, adjacent legality-proven loops compile into
one fused wrapper spanning a single OpenMP region (see
:func:`~repro.op2.codegen.csource.generate_native_fused`).

All backends must produce results identical to ``sequential`` up to
floating-point reassociation; the test suite enforces this.
"""

from repro.op2.backends.base import Backend, ReductionBuffers
from repro.op2.backends.blockcolor import BlockColorBackend
from repro.op2.backends.native import NativeAtomicsBackend, NativeBackend
from repro.op2.backends.sanitizer import RaceError, RaceFinding, SanitizerBackend
from repro.op2.backends.sequential import SequentialBackend
from repro.op2.backends.vectorized import AtomicsBackend, ColoringBackend, VectorizedBackend

BACKENDS: dict[str, Backend] = {
    "sequential": SequentialBackend(),
    "vectorized": VectorizedBackend(),
    "coloring": ColoringBackend(),
    "atomics": AtomicsBackend(),
    "blockcolor": BlockColorBackend(),
    "sanitizer": SanitizerBackend(),
    "native": NativeBackend(),
    "native-atomics": NativeAtomicsBackend(),
}


def resolve_backend(name: str) -> Backend:
    """Look up a backend by name with a helpful error."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None


__all__ = ["Backend", "ReductionBuffers", "BACKENDS", "resolve_backend",
           "SequentialBackend", "VectorizedBackend", "ColoringBackend",
           "AtomicsBackend", "BlockColorBackend", "SanitizerBackend",
           "NativeBackend", "NativeAtomicsBackend", "RaceError",
           "RaceFinding"]
