"""Runtime configuration for OP2 execution.

Configuration is thread-local (each simulated MPI rank is a thread and
must be able to run with the collective-consistent settings its driver
chose) with a module-level default that new threads inherit.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, replace


@dataclass
class Config:
    """Execution knobs for par_loops.

    Attributes
    ----------
    backend:
        Default compute backend: ``"sequential"``, ``"vectorized"``,
        ``"coloring"``, ``"atomics"``, ``"blockcolor"``, ``"native"``
        (compiled C via the host toolchain, block-color plan; falls
        back to ``"vectorized"`` when no compiler is available) or
        ``"native-atomics"`` (compiled C with chunked
        ``#pragma omp atomic`` increments; falls back to
        ``"atomics"``).
    native_threads:
        OpenMP thread count of the native backends' compiled wrappers
        (single-loop and fused-chain alike); ``0`` (default) lets the
        OpenMP runtime decide (``omp_get_max_threads``, honouring
        ``OMP_NUM_THREADS``). With more than one thread, global
        reductions fold thread partials in nondeterministic order —
        pin ``native_threads=1`` where bitwise-reproducible reductions
        matter.
    partial_halos:
        Enable the partial-halo-exchange optimization (paper's PH).
    grouped_halos:
        Pack all of a loop's halo messages to one neighbour into a
        single message (paper's GH).
    atomics_block:
        Chunk size of the atomics (CUDA-analogue) backends — the
        simulated thread-block extent, shared by the numpy
        ``atomics`` simulation and the compiled ``native-atomics``
        wrappers so both accumulate in the same chunk order.
    block_size:
        Block extent of the blockcolor (OpenMP-plan analogue) backend.
    profile:
        Record per-kernel compute/halo time into the thread's
        :class:`~repro.op2.profiling.LoopProfile`.
    check_access:
        Debug mode: the sequential backend hands kernels *read-only*
        views for READ arguments, so a kernel violating its declared
        access fails loudly instead of silently corrupting data.
    sanitize:
        Debug mode: route every par_loop through the ``sanitizer``
        backend (write-set race auditing), overriding ``backend`` and
        per-loop overrides. A plan with a same-color conflict raises
        :class:`~repro.op2.backends.sanitizer.RaceError` instead of
        silently corrupting data.
    trace:
        Emit telemetry spans (compute/halo per par_loop, plan builds,
        smpi messages and collectives) into this thread's
        :class:`~repro.telemetry.recorder.RankRecorder`. Implies
        per-kernel timing even when ``profile`` is off.
    lazy:
        Defer every par_loop into this thread's implicit
        :class:`~repro.op2.chain.LoopChain` instead of executing
        immediately. The chain flushes on host data access or an
        explicit :func:`~repro.op2.chain.flush_chain`; flushing elides
        redundant halo exchanges, batches the rest, and fuses adjacent
        compatible loops. Results are bitwise-identical to eager mode.
    chain_fuse:
        Allow the chain flush to fuse adjacent compatible loops into a
        single generated wrapper (on by default; elision and batching
        are unaffected when off).
    chain_verify:
        Debug mode: every chain flush replays the loops eagerly on a
        snapshot of the pre-flush state and bitwise-compares all
        touched dats and reductions, raising
        :class:`~repro.op2.chain.ChainEquivalenceError` on divergence.
    """

    backend: str = "vectorized"
    native_threads: int = 0
    partial_halos: bool = False
    grouped_halos: bool = False
    atomics_block: int = 4096
    block_size: int = 256
    profile: bool = False
    check_access: bool = False
    sanitize: bool = False
    trace: bool = False
    lazy: bool = False
    chain_fuse: bool = True
    chain_verify: bool = False


_default = Config()
_tls = threading.local()


def current_config() -> Config:
    """This thread's active configuration (inherits the module default)."""
    cfg = getattr(_tls, "config", None)
    if cfg is None:
        cfg = replace(_default)
        _tls.config = cfg
    return cfg


def set_config(**kwargs) -> Config:
    """Update this thread's configuration in place; returns it."""
    cfg = current_config()
    for key, value in kwargs.items():
        if not hasattr(cfg, key):
            raise ValueError(f"unknown config key {key!r}")
        setattr(cfg, key, value)
    return cfg


def set_default_config(**kwargs) -> None:
    """Update the module default inherited by new threads."""
    for key, value in kwargs.items():
        if not hasattr(_default, key):
            raise ValueError(f"unknown config key {key!r}")
        setattr(_default, key, value)


@contextlib.contextmanager
def configure(**kwargs):
    """Context manager: apply config overrides on this thread, then restore."""
    cfg = current_config()
    saved = replace(cfg)
    try:
        set_config(**kwargs)
        yield cfg
    finally:
        _tls.config = saved
