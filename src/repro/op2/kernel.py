"""Elemental kernels: the "science source" of an OP2 application.

A kernel is an ordinary Python function written in a *restricted,
scalar* style — it describes the computation for **one** element,
receiving one small array view per par_loop argument, with no hint of
parallelization (exactly the paper's Fig. 3). The code-generation
layer parses this single source and emits radically different
executable code per backend.

Restricted kernel language
--------------------------
* assignments / augmented assignments to local scalars and to
  constant-indexed subscripts of the argument arrays;
* arithmetic, comparisons, boolean operators, and conditional
  *expressions* (``a if c else b`` — vectorized to ``np.where``);
* calls to the whitelisted math functions (``sqrt``, ``fabs``/``abs``,
  ``exp``, ``log``, ``sin``, ``cos``, ``atan2``, ``min``, ``max``,
  ``pow``, ``copysign``);
* ``for i in range(<literal>)`` loops (kept as scalar-index loops);
* no ``if`` statements, ``while``, attribute access, or other calls —
  the parser rejects them with a pointed error, because they cannot be
  mapped onto every backend.
"""

from __future__ import annotations

import ast
import inspect
import math
import textwrap
import threading
from typing import Callable


class KernelParseError(ValueError):
    """The kernel source steps outside the restricted language."""


#: CPython 3.11 keeps AST<->object conversion recursion bookkeeping in
#: per-interpreter (not per-thread) state, so concurrent ``ast.parse``
#: / ``compile(ast_obj)`` calls — e.g. simulated-MPI rank threads each
#: lazily parsing their kernels — intermittently raise ``SystemError:
#: AST constructor recursion depth mismatch``. Serializing all AST
#: conversions through one lock removes the race (fixed upstream in
#: 3.12 by moving the bookkeeping to the thread state).
_ast_lock = threading.Lock()


#: functions kernels may call, and their numpy spellings
MATH_WHITELIST: dict[str, str] = {
    "sqrt": "_np.sqrt",
    "fabs": "_np.abs",
    "abs": "_np.abs",
    "exp": "_np.exp",
    "log": "_np.log",
    "sin": "_np.sin",
    "cos": "_np.cos",
    "tan": "_np.tan",
    "atan2": "_np.arctan2",
    "min": "_np.minimum",
    "max": "_np.maximum",
    "pow": "_np.power",
    "copysign": "_np.copysign",
}


class Kernel:
    """A named elemental kernel.

    Parameters
    ----------
    fn:
        The Python function implementing the per-element computation.
        Its positional parameters correspond one-to-one with the
        par_loop arguments.
    name:
        Identifier used in generated code; defaults to ``fn.__name__``.
    """

    def __init__(self, fn: Callable | str, name: str | None = None) -> None:
        if isinstance(fn, str):
            # kernel given as source text (e.g. generated at runtime)
            self.fn = None
            self.source = textwrap.dedent(fn)
            try:
                with _ast_lock:
                    tree = ast.parse(self.source)
            except SyntaxError as exc:
                raise KernelParseError(
                    f"kernel source does not parse: {exc}"
                ) from exc
            fdefs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
            if len(fdefs) != 1:
                raise KernelParseError(
                    "kernel source must contain exactly one function"
                )
            self.name = name or fdefs[0].name
        else:
            if not callable(fn):
                raise TypeError(f"kernel fn must be callable, got {fn!r}")
            self.fn = fn
            self.name = name or fn.__name__
            try:
                src = inspect.getsource(fn)
            except (OSError, TypeError) as exc:
                raise KernelParseError(
                    f"cannot retrieve source for kernel {self.name!r}; "
                    f"kernels must be defined in a file (not a REPL/lambda) "
                    f"or passed as a source string"
                ) from exc
            self.source = textwrap.dedent(src)
        if not self.name.isidentifier():
            raise ValueError(f"Kernel name must be an identifier: {self.name!r}")
        self._ast: ast.FunctionDef | None = None
        self._params: list[str] | None = None
        self._scalar_fn: Callable | None = None
        #: generated-code cache: (backend, signature) -> compiled wrapper
        self._cache: dict[tuple, object] = {}
        self._cache_lock = threading.Lock()
        #: generated source text per cache key, for inspection/examples
        self._generated_sources: dict[tuple, str] = {}

    # -- parsing -------------------------------------------------------
    @property
    def func_ast(self) -> ast.FunctionDef:
        """The parsed (and validated) function definition."""
        if self._ast is None:
            with _ast_lock:
                tree = ast.parse(self.source)
            fdefs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
            if len(fdefs) != 1:
                raise KernelParseError(
                    f"kernel source for {self.name!r} must contain exactly one "
                    f"function definition"
                )
            fdef = fdefs[0]
            fdef.decorator_list = []  # e.g. @staticmethod wrappers
            _Validator(self.name, {a.arg for a in fdef.args.args}).visit(fdef)
            self._ast = fdef
        return self._ast

    @property
    def params(self) -> list[str]:
        """Positional parameter names (one per par_loop argument)."""
        if self._params is None:
            fdef = self.func_ast
            if fdef.args.posonlyargs or fdef.args.kwonlyargs or fdef.args.vararg \
                    or fdef.args.kwarg or fdef.args.defaults:
                raise KernelParseError(
                    f"kernel {self.name!r} must take plain positional parameters"
                )
            self._params = [a.arg for a in fdef.args.args]
        return self._params

    @property
    def scalar_fn(self) -> Callable:
        """The kernel recompiled with the math whitelist in scope.

        Kernel sources reference ``sqrt``/``fabs``/... as bare names;
        the scalar (sequential) execution path provides them from the
        ``math`` module, matching the numpy spellings the vectorized
        path generates.
        """
        if self._scalar_fn is None:
            fdef = self.func_ast  # validates first
            namespace: dict = {
                "sqrt": math.sqrt, "fabs": math.fabs, "exp": math.exp,
                "log": math.log, "sin": math.sin, "cos": math.cos,
                "tan": math.tan, "atan2": math.atan2, "pow": pow,
                "copysign": math.copysign, "abs": abs, "min": min,
                "max": max, "range": range,
            }
            module = ast.Module(body=[fdef], type_ignores=[])
            ast.fix_missing_locations(module)
            with _ast_lock:  # compile(ast_obj) converts AST too
                code = compile(module, filename=f"<op2-kernel:{self.name}>",
                               mode="exec")
            exec(code, namespace)  # noqa: S102 - validated kernel source
            self._scalar_fn = namespace[fdef.name]
        return self._scalar_fn

    # -- generated-code cache -------------------------------------------
    def cached(self, key: tuple):
        return self._cache.get(key)

    def store(self, key: tuple, wrapper: object, source: str) -> None:
        with self._cache_lock:
            self._cache[key] = wrapper
            self._generated_sources[key] = source

    def generated_sources(self) -> dict[tuple, str]:
        """All generated source variants so far (for inspection)."""
        return dict(self._generated_sources)

    def __repr__(self) -> str:
        return f"Kernel({self.name!r}, params={self.params})"


class _Validator(ast.NodeVisitor):
    """Reject constructs outside the restricted kernel language."""

    _ALLOWED_STMT = (ast.Assign, ast.AugAssign, ast.For, ast.Expr,
                     ast.Return, ast.Pass, ast.AnnAssign)

    def __init__(self, kernel_name: str, param_names: set[str]) -> None:
        self.kernel_name = kernel_name
        self.param_names = param_names

    def _err(self, node: ast.AST, msg: str) -> KernelParseError:
        line = getattr(node, "lineno", "?")
        return KernelParseError(
            f"kernel {self.kernel_name!r}, line {line}: {msg}"
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for stmt in node.body:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return  # docstring
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                raise self._err(stmt, "kernels must not return values; write "
                                      "results through their arguments")
            return
        if isinstance(stmt, ast.If):
            raise self._err(
                stmt, "`if` statements are not vectorizable; use a conditional "
                      "expression: x = a if cond else b"
            )
        if isinstance(stmt, ast.While):
            raise self._err(stmt, "`while` loops are not supported in kernels")
        if isinstance(stmt, ast.For):
            self._check_for(stmt)
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._check_expr_tree(stmt)
            return
        raise self._err(stmt, f"statement {type(stmt).__name__} is not allowed "
                              f"in kernels")

    def _check_for(self, stmt: ast.For) -> None:
        it = stmt.iter
        ok = (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
            and 1 <= len(it.args) <= 2
            and all(isinstance(a, ast.Constant) and isinstance(a.value, int)
                    for a in it.args)
        )
        if not ok:
            raise self._err(stmt, "only `for i in range(<int literal>)` loops "
                                  "are allowed in kernels")
        if stmt.orelse:
            raise self._err(stmt, "for/else is not allowed in kernels")
        for sub in stmt.body:
            self._check_stmt(sub)

    def _check_expr_tree(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                if not isinstance(node.func, ast.Name):
                    raise self._err(node, "only simple whitelisted calls are "
                                          "allowed in kernels")
                if node.func.id not in MATH_WHITELIST:
                    raise self._err(
                        node,
                        f"call to {node.func.id!r} is not in the kernel math "
                        f"whitelist {sorted(MATH_WHITELIST)}",
                    )
            elif isinstance(node, ast.Attribute):
                raise self._err(node, "attribute access is not allowed in kernels")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp, ast.Lambda, ast.Await,
                                   ast.Yield, ast.YieldFrom, ast.Starred)):
                raise self._err(node, f"{type(node).__name__} is not allowed "
                                      f"in kernels")
