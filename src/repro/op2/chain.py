"""Lazy par_loop execution: loop chains, halo elision and loop fusion.

Eager ``par_loop`` executes each loop the moment it is declared, so
every loop must conservatively refresh whatever halos it reads. The
Hydra inner iteration issues dozens of back-to-back loops per
Runge-Kutta stage; seen *as a chain*, most of those refreshes are
redundant. This module defers validated :class:`ParLoop` objects into a
per-thread :class:`LoopChain` (under ``Config.lazy`` or an explicit
:func:`loop_chain` context) and flushes them through a dataflow
analysis that the eager path cannot perform:

* **cross-loop halo elision** — a dat read through several maps with no
  intervening write gets *one* union-scope exchange instead of one
  partial exchange per map (the eager dirty bit remembers only the last
  scope, so under ``Config.partial_halos`` it re-exchanges per map);
* **forward batching** — every exchange a chain segment needs is
  hoisted to the earliest point its data is ready and packed into one
  grouped multi-dat message per neighbour (the grouped-halo
  optimization applied *across* loops instead of within one);
* **loop fusion** — adjacent loops over the same iteration set with
  compatible signatures are fused into a single generated wrapper
  (see ``codegen.seq.generate_fused_sequential`` /
  ``codegen.vector.generate_fused_vectorized``), eliding per-loop
  dispatch overhead.

Equivalence guarantee
---------------------
Chained execution is *bitwise identical* to eager execution: fused
wrappers preserve full loop-before-loop ordering, fusion is refused
whenever a cross-loop dependency could reorder floating-point work,
READ Globals are snapshotted at enqueue time (call-site semantics),
and host access to dat/global data transparently flushes the chain.
``Config.chain_verify`` makes the runtime enforce this on every flush
by replaying the chain eagerly and comparing bitwise
(:class:`ChainEquivalenceError` on any mismatch); the regression suite
pins it with fingerprints on the airfoil and mini-Rig250 runs.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.op2.access import Access, READING, WRITING
from repro.op2.backends import resolve_backend
from repro.op2.config import current_config
from repro.op2.halo import (exchange_halos_multi_begin,
                            exchange_halos_multi_end, marker_covers,
                            normalize_scopes, resolve_eager_scope)
from repro.telemetry.recorder import active_recorder, span as _tspan

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.parloop import ParLoop

#: backends whose generated wrappers support source-level fusion — the
#: numpy backends via generated fused modules, the native backends via
#: one compiled OpenMP region spanning the whole group
FUSABLE_BACKENDS = frozenset({"sequential", "vectorized", "atomics",
                              "native", "native-atomics"})

#: bound on fused-group size, to keep generated modules small
MAX_FUSE = 8


class ChainEquivalenceError(RuntimeError):
    """Chained execution diverged from the eager replay (verify mode)."""


@dataclass
class ChainStats:
    """Cumulative per-thread chain accounting (independent of telemetry)."""

    loops: int = 0            #: par_loops enqueued
    flushes: int = 0          #: flush calls that executed work
    fused: int = 0            #: loops absorbed into fused wrappers
    exchanges: int = 0        #: batched exchange rounds performed
    eager_exchanges: int = 0  #: exchange calls eager mode would have made
    halo_elided: int = 0      #: eager exchange calls avoided
    messages: int = 0         #: point-to-point halo messages sent (this rank)
    eager_messages: int = 0   #: messages eager mode would have sent
    messages_saved: int = 0   #: eager messages avoided

    def as_dict(self) -> dict:
        return {
            "loops": self.loops, "flushes": self.flushes,
            "fused": self.fused, "exchanges": self.exchanges,
            "eager_exchanges": self.eager_exchanges,
            "halo_elided": self.halo_elided,
            "messages": self.messages,
            "eager_messages": self.eager_messages,
            "messages_saved": self.messages_saved,
        }


@dataclass
class _Pending:
    """One enqueued loop plus its call-site context."""

    loop: "ParLoop"
    backend: str | None
    #: (arg index, snapshot) for every READ Global — call-site semantics
    gbl_reads: list[tuple[int, np.ndarray]] = field(default_factory=list)

    @property
    def extent(self) -> int:
        s = self.loop.iterset
        return s.exec_size if self.loop.has_indirect_writes else s.size


# --------------------------------------------------------------------------
# dataflow analysis
# --------------------------------------------------------------------------

@dataclass
class _Exchange:
    """One scheduled exchange: refresh ``dat`` for ``scopes`` before
    executing the loop at ``at`` (hoistable back to ``ready``)."""

    dat: object
    scopes: frozenset
    ready: int      #: earliest position the data is complete (after last write)
    at: int         #: position of the first loop that needs it


def _read_scopes(pending: "_Pending", cfg) -> dict[int, tuple]:
    """Per-dat halo scopes this loop reads — the exact eager rule.

    Delegates to :func:`~repro.op2.parloop.loop_read_scopes` so the
    chain analyzer and eager ``_refresh_halos`` can never drift apart
    (the bitwise-equivalence guarantee depends on them agreeing on
    scope depth).
    """
    from repro.op2.parloop import loop_read_scopes

    return loop_read_scopes(pending.loop, cfg)


def _written_dats(loop: "ParLoop"):
    for arg in loop.args:
        if arg.is_dat and arg.access in WRITING and arg.data.set.halo is not None:
            yield arg.data


class _SimFreshness:
    """Simulated dat freshness, mirroring ``Dat.is_fresh_for`` semantics."""

    def __init__(self) -> None:
        self._state: dict[int, object] = {}  # id(dat) -> fresh_for marker

    def seed(self, dat) -> None:
        if id(dat) not in self._state:
            self._state[id(dat)] = dat.fresh_for if dat.halo_fresh else None

    def is_fresh(self, dat, scope: str) -> bool:
        self.seed(dat)
        return marker_covers(self._state[id(dat)], scope)

    def mark_fresh(self, dat, marker) -> None:
        self._state[id(dat)] = marker

    def mark_stale(self, dat) -> None:
        if dat.set.total_size != dat.set.size:
            self._state[id(dat)] = None


def _eager_exchange_count(pending: list[_Pending], scopes_list: list, cfg
                          ) -> tuple[int, int]:
    """(exchange calls, messages) eager execution of the chain would do."""
    sim = _SimFreshness()
    calls = 0
    messages = 0
    for p, needs in zip(pending, scopes_list):
        groups: dict[tuple[int, str], tuple] = {}
        for dat, scopes in needs.values():
            scope = resolve_eager_scope(scopes)
            if sim.is_fresh(dat, scope):
                continue
            key = (id(dat.set), scope)
            groups.setdefault(key, (dat.set, scope, []))[2].append(dat)
        for sset, scope, dats in groups.values():
            plan = sset.halo.plan_for(scope)
            calls += 1
            messages += len(plan.send) * (1 if cfg.grouped_halos else len(dats))
            for d in dats:
                sim.mark_fresh(d, plan.name)
        for d in _written_dats(p.loop):
            sim.mark_stale(d)
    return calls, messages


def _analyze(pending: list[_Pending], scopes_list: list, cfg
             ) -> dict[int, list[_Exchange]]:
    """Schedule the chain's exchanges: hoisted, scope-unioned, batched.

    Returns ``position -> exchanges to run before executing that loop``.
    For each dat, the loop sequence splits into write-free *windows*; all
    reads inside one window are served by a single exchange whose scope
    is the union of every read scope in the window, placed at the first
    position whose read the entry freshness cannot satisfy. Exchanges
    from different dats are then batched: each round runs at the
    earliest still-unmet position and absorbs every exchange whose data
    is already complete (``ready <= round position``).
    """
    # per-dat access timeline
    reads: dict[int, tuple[object, list[tuple[int, set]]]] = {}
    writes: dict[int, list[int]] = {}
    for pos, (p, needs) in enumerate(zip(pending, scopes_list)):
        for dat, scopes in needs.values():
            reads.setdefault(id(dat), (dat, []))[1].append((pos, scopes))
        for d in _written_dats(p.loop):
            writes.setdefault(id(d), []).append(pos)

    sim = _SimFreshness()
    required: list[_Exchange] = []
    for key, (dat, events) in reads.items():
        wpos = writes.get(key, [])
        # split read events into write-free windows
        windows: dict[int, list[tuple[int, set]]] = {}
        for pos, scopes in events:
            prior = [w for w in wpos if w < pos]
            start = (prior[-1] + 1) if prior else 0
            windows.setdefault(start, []).append((pos, scopes))
        for start in sorted(windows):
            evs = sorted(windows[start])
            if start == 0:
                # entry freshness may already satisfy some or all reads
                sim.seed(dat)
                unmet = [(pos, scopes) for pos, scopes in evs
                         if any(not sim.is_fresh(dat, s) for s in scopes)]
            else:
                unmet = evs  # a write inside the chain staled everything
            if not unmet:
                continue
            union: set = set()
            for _pos, scopes in evs:
                union |= scopes
            required.append(_Exchange(dat=dat, scopes=normalize_scopes(union),
                                      ready=start, at=unmet[0][0]))

    # batch into rounds: run at the earliest unmet position, absorbing
    # every exchange already satisfiable there (forward prefetch)
    schedule: dict[int, list[_Exchange]] = {}
    todo = sorted(required, key=lambda e: (e.at, e.ready))
    while todo:
        p = todo[0].at
        round_members = [e for e in todo if e.ready <= p]
        todo = [e for e in todo if e.ready > p]
        schedule.setdefault(p, []).extend(round_members)
    return schedule


# --------------------------------------------------------------------------
# fusion
# --------------------------------------------------------------------------

def _resolved_backend_name(p: _Pending, cfg) -> str:
    return p.backend or cfg.backend


def _dep_blocks_fusion(group: list[_Pending], cand: _Pending) -> bool:
    """True if a data dependency forbids fusing ``cand`` onto ``group``.

    Shared dats where either side writes must be accessed *directly* by
    both (element-local), so section order inside the fused wrapper and
    chunked execution reproduce eager results bitwise. Distributed
    loops executing over the exec halo additionally refuse any such
    dependency: eager would re-exchange the written dat between them.
    """
    cand_access: dict[int, list] = {}
    for a in cand.loop.args:
        if a.is_dat:
            cand_access.setdefault(id(a.data), []).append(a)
    distributed = cand.loop.iterset.halo is not None
    over_halo = cand.extent > cand.loop.iterset.size
    for p in group:
        for a in p.loop.args:
            if not a.is_dat or id(a.data) not in cand_access:
                continue
            for b in cand_access[id(a.data)]:
                writes = (a.access in WRITING) or (b.access in WRITING)
                if not writes:
                    continue
                if a.is_indirect or b.is_indirect:
                    return True
                if distributed and over_halo:
                    return True
    return False


def _gbl_conflict(group: list[_Pending], cand: _Pending) -> bool:
    """Same Global READ with different call-site snapshots can't fuse."""
    snaps: dict[int, np.ndarray] = {}
    for p in group:
        for i, snap in p.gbl_reads:
            snaps[id(p.loop.args[i].data)] = snap
    for i, snap in cand.gbl_reads:
        prev = snaps.get(id(cand.loop.args[i].data))
        if prev is not None and not np.array_equal(prev, snap):
            return True
    return False


def _fuse_groups(pending: list[_Pending],
                 schedule: dict[int, list[_Exchange]],
                 cfg) -> list[list[int]]:
    """Partition chain positions into fusable runs (singletons included).

    Purely structural — Global-snapshot conflicts are *not* checked here
    (they vary run to run), so callers must post-process the groups with
    :func:`_resplit_gbl` before executing. That split lets the result be
    cached across flushes of the same chain shape.
    """
    groups: list[list[int]] = []
    for pos, p in enumerate(pending):
        name = _resolved_backend_name(p, cfg)
        can_extend = (
            groups
            and not schedule.get(pos)          # exchange must run in between
            and cfg.chain_fuse
            and not cfg.check_access
            and name in FUSABLE_BACKENDS
            and len(groups[-1]) < MAX_FUSE
        )
        if can_extend:
            head = pending[groups[-1][0]]
            can_extend = (
                head.loop.iterset is p.loop.iterset
                and _resolved_backend_name(head, cfg) == name
                and head.extent == p.extent
                and not _dep_blocks_fusion([pending[i] for i in groups[-1]], p)
            )
        if can_extend:
            groups[-1].append(pos)
        else:
            groups.append([pos])
    return groups


def _resplit_gbl(pending: list[_Pending],
                 groups: list[list[int]]) -> list[list[int]]:
    """Split fused groups wherever Global snapshots conflict this flush."""
    out: list[list[int]] = []
    for group in groups:
        if len(group) == 1 or not any(pending[i].gbl_reads for i in group):
            out.append(group)
            continue
        cur = [group[0]]
        for pos in group[1:]:
            if _gbl_conflict([pending[i] for i in cur], pending[pos]):
                out.append(cur)
                cur = [pos]
            else:
                cur.append(pos)
        out.append(cur)
    return out


# --------------------------------------------------------------------------
# flush-plan cache (the inspector/executor split)
# --------------------------------------------------------------------------

@dataclass
class _ExchangeUnit:
    """One per-set batched exchange of a scheduled round, split-phase.

    Sends post as soon as the last producing loop has run (``ready``);
    receives complete just before the first consuming loop (``at``) —
    the compute issued in between hides the exchange latency. ``tag``
    disambiguates concurrently in-flight units; it is derived from the
    unit's deterministic order, so all ranks agree on it.
    """

    sset: object
    dat_scopes: list        #: [(dat, frozenset of scopes)]
    ready: int
    at: int
    tag: int


#: tag base for chain exchanges, clear of the eager per-dat tag range
_CHAIN_TAG = 7500


def _build_units(schedule: dict[int, list[_Exchange]]) -> list[_ExchangeUnit]:
    """Flatten a schedule into deterministically ordered exchange units."""
    units: list[_ExchangeUnit] = []
    for p in sorted(schedule):
        by_set: dict[int, tuple] = {}
        for ex in schedule[p]:
            by_set.setdefault(id(ex.dat.set), (ex.dat.set, []))[1].append(ex)
        for sset, exs in by_set.values():
            exs.sort(key=lambda e: e.dat.name)
            units.append(_ExchangeUnit(
                sset=sset,
                dat_scopes=[(e.dat, e.scopes) for e in exs],
                ready=max(e.ready for e in exs), at=p,
                tag=_CHAIN_TAG + len(units)))
    return units


@dataclass
class _FlushPlan:
    """One inspected chain shape: schedule, fusion groups, eager baseline.

    Iterative solvers flush the *same* chain every iteration; inspecting
    it once and replaying the plan (OP2's inspector/executor idiom) is
    what keeps lazy dispatch overhead below eager's. ``bindings`` and
    ``entry_marks`` record exactly what the analysis depended on — the
    per-loop (kernel, iterset, backend, dat/map/access bindings) and
    each halo-bearing dat's entry freshness marker — both for the cheap
    identity re-validation on later flushes and as strong references
    that keep every probed ``id()`` from being recycled.
    """

    schedule: dict[int, list[_Exchange]]
    units: list[_ExchangeUnit]
    groups: list[list[int]]
    eager_calls: int
    eager_msgs: int
    #: per loop: (kernel, iterset, backend, ((data|None, map, access)...))
    #: — ``None`` stands for any Global, which never influences the plan
    bindings: list
    entry_marks: list   #: [(dat, freshness marker at inspection time)]
    #: per loop: precomputed ``flatten_bindings`` (template, patches) —
    #: valid whenever ``bindings`` re-validates, saving the per-loop
    #: array-gathering walk on every executor replay
    templates: list


#: plan-cache size bound; one plan per distinct (chain shape, config,
#: entry freshness) — cleared wholesale on overflow
_PLAN_CACHE_MAX = 128


def _probe_key(pending: list[_Pending], cfg) -> tuple:
    """Cheap first-level cache key: kernel sequence + config flags.

    Deliberately partial — a hit must be confirmed with
    :func:`_plan_matches` (identity walk, no allocation). Kernel ids
    cannot be stale: any cached plan under this key pins its kernels,
    so a matching id proves it is the same live object.
    """
    return (tuple(id(p.loop.kernel) for p in pending),
            cfg.partial_halos, cfg.grouped_halos, cfg.chain_fuse,
            cfg.check_access, cfg.backend)


def _capture_bindings(pending: list[_Pending]) -> tuple[list, list]:
    """What this flush's analysis depends on, for later re-validation."""
    bindings = []
    entry: dict[int, tuple] = {}
    for p in pending:
        loop = p.loop
        args = tuple((a.data if a.is_dat else None, a.map, a.access)
                     for a in loop.args)
        bindings.append((loop.kernel, loop.iterset, p.backend, args))
        for a in loop.args:
            if a.is_dat and a.data.set.halo is not None:
                d = a.data
                if id(d) not in entry:
                    entry[id(d)] = (d, d.fresh_for if d.halo_fresh else None)
    return bindings, list(entry.values())


def _plan_matches(plan: _FlushPlan, pending: list[_Pending]) -> bool:
    """Identity-compare a cached plan's inputs against this flush."""
    if len(plan.bindings) != len(pending):
        return False
    for (kern, iset, bk, bargs), p in zip(plan.bindings, pending):
        loop = p.loop
        if loop.kernel is not kern or loop.iterset is not iset \
                or p.backend != bk or len(loop.args) != len(bargs):
            return False
        for a, (d, m, acc) in zip(loop.args, bargs):
            if (a.data if a.is_dat else None) is not d \
                    or a.map is not m or a.access is not acc:
                return False
    for d, marker in plan.entry_marks:
        if (d.fresh_for if d.halo_fresh else None) != marker:
            return False
    return True


# --------------------------------------------------------------------------
# the chain
# --------------------------------------------------------------------------

class LoopChain:
    """A per-thread queue of deferred par_loops."""

    def __init__(self, name: str = "chain") -> None:
        self.name = name
        self.pending: list[_Pending] = []
        self.stats = ChainStats()
        #: ids of Globals any pending loop reduces into — O(1) conflict
        #: checks for enqueue and host Global writes
        self._gbl_reductions: set[int] = set()

    # -- queueing ------------------------------------------------------
    def enqueue(self, loop: "ParLoop", backend: str | None) -> None:
        read_idx = [i for i, arg in enumerate(loop.args)
                    if arg.is_global and arg.access is Access.READ]
        # a pending reduction into a Global this loop READs must land
        # first — snapshots taken below must see the reduced value
        if self._gbl_reductions and read_idx:
            if any(id(loop.args[i].data) in self._gbl_reductions
                   for i in read_idx):
                self.flush()
        gbl_reads = [(i, loop.args[i].data._data.copy()) for i in read_idx]
        self.pending.append(_Pending(loop=loop, backend=backend,
                                     gbl_reads=gbl_reads))
        for arg in loop.args:
            if arg.is_global and arg.is_reduction:
                self._gbl_reductions.add(id(arg.data))
        self.stats.loops += 1

    # -- flushing ------------------------------------------------------
    def flush(self) -> None:
        if not self.pending or _tls_get("in_flush"):
            return
        pending, self.pending = self.pending, []
        self._gbl_reductions.clear()
        cfg = current_config()
        _tls_set("in_flush", True)
        try:
            with _tspan("chain.flush", "op2.chain", chain=self.name,
                        loops=len(pending)):
                if cfg.chain_verify:
                    self._flush_verified(pending, cfg)
                else:
                    self._run(pending, cfg)
        finally:
            _tls_set("in_flush", False)

    def _run(self, pending: list[_Pending], cfg) -> None:
        key = _probe_key(pending, cfg)
        cache = _tls_get("plan_cache")
        if cache is None:
            cache = {}
            _tls_set("plan_cache", cache)
        plan = None
        bucket = cache.get(key)
        if bucket is not None:
            for cand in bucket:
                if _plan_matches(cand, pending):
                    plan = cand
                    break
        if plan is None:
            scopes_list = [_read_scopes(p, cfg) for p in pending]
            schedule = _analyze(pending, scopes_list, cfg)
            eager_calls, eager_msgs = _eager_exchange_count(
                pending, scopes_list, cfg)
            bindings, entry_marks = _capture_bindings(pending)
            if sum(len(b) for b in cache.values()) >= _PLAN_CACHE_MAX:
                cache.clear()
            plan = _FlushPlan(
                schedule=schedule, units=_build_units(schedule),
                groups=_fuse_groups(pending, schedule, cfg),
                eager_calls=eager_calls, eager_msgs=eager_msgs,
                bindings=bindings, entry_marks=entry_marks,
                templates=[p.loop.binding_template() for p in pending])
            cache.setdefault(key, []).append(plan)
        for p, tmpl in zip(pending, plan.templates):
            p.loop._flat_template = tmpl
        groups = _resplit_gbl(pending, plan.groups)
        eager_calls, eager_msgs = plan.eager_calls, plan.eager_msgs

        # map each unit to fusion-group indices: sends post after the
        # group that completes the last write, receives complete before
        # the group whose head consumes the data
        pos_group = {pos: gi for gi, g in enumerate(groups) for pos in g}
        begins: dict[int, list[_ExchangeUnit]] = {}
        ends: dict[int, list[_ExchangeUnit]] = {}
        for u in plan.units:
            gb = 0 if u.ready == 0 else pos_group[u.ready - 1] + 1
            begins.setdefault(gb, []).append(u)
            ends.setdefault(pos_group[u.at], []).append(u)

        sent = 0
        rounds = 0
        in_flight: dict[int, object] = {}
        for gi, group in enumerate(groups):
            # begins strictly before ends: when both land on the same
            # group, every rank must post its sends before any blocks
            # on a receive
            for u in begins.get(gi, ()):
                tok = exchange_halos_multi_begin(u.sset, u.dat_scopes,
                                                 tag=u.tag)
                in_flight[id(u)] = tok
                if tok is not None:
                    sent += tok.sent
                rounds += 1
            for u in ends.get(gi, ()):
                exchange_halos_multi_end(in_flight.pop(id(u)))
            if len(group) > 1:
                self._execute_fused([pending[i] for i in group], cfg)
            else:
                self._execute_one(pending[group[0]], cfg)

        st = self.stats
        st.flushes += 1
        st.exchanges += rounds
        st.eager_exchanges += eager_calls
        st.halo_elided += max(0, eager_calls - rounds)
        st.messages += sent
        st.eager_messages += eager_msgs
        st.messages_saved += max(0, eager_msgs - sent)
        rec = active_recorder()
        if rec is not None:
            rec.counter("chain.flushes")
            rec.counter("chain.loops", len(pending))
            rec.counter("chain.exchanges", rounds)
            rec.counter("chain.halo_elided", max(0, eager_calls - rounds))
            rec.counter("chain.messages_saved", max(0, eager_msgs - sent))
            if eager_calls > rounds:
                rec.instant("chain.elided", "op2.chain",
                            exchanges=eager_calls - rounds,
                            messages=max(0, eager_msgs - sent))

    # -- execution -----------------------------------------------------
    def _execute_one(self, p: _Pending, cfg) -> None:
        backend = resolve_backend(p.backend or cfg.backend)
        with _swapped_globals([p]):
            p.loop.run_compute(backend)

    def _execute_fused(self, group: list[_Pending], cfg) -> None:
        from repro.op2.parloop import execute_fused

        backend_name = _resolved_backend_name(group[0], cfg)
        with _swapped_globals(group):
            execute_fused([p.loop for p in group], backend_name)
        self.stats.fused += len(group) - 1
        rec = active_recorder()
        if rec is not None:
            rec.counter("chain.fused", len(group) - 1)

    # -- verification --------------------------------------------------
    def _flush_verified(self, pending: list[_Pending], cfg) -> None:
        """Run chained, replay eagerly on restored state, compare bitwise."""
        dats, gbls = _touched(pending)
        saved_dats = {id(d): (d._data.copy(), d.halo_fresh, d.fresh_for)
                      for d in dats}
        saved_gbls = {id(g): g._data.copy() for g in gbls}

        self._run(pending, cfg)
        lazy_dats = {id(d): d._data[: d.set.size].copy() for d in dats}
        lazy_gbls = {id(g): g._data.copy() for g in gbls}

        for d in dats:
            data, fresh, ff = saved_dats[id(d)]
            d._data[:] = data
            d.halo_fresh = fresh
            d.fresh_for = ff
        for g in gbls:
            g._data[:] = saved_gbls[id(g)]
        for p in pending:
            with _swapped_globals([p]):
                p.loop.execute(p.backend)

        for d in dats:
            eager = d._data[: d.set.size]
            if not np.array_equal(eager, lazy_dats[id(d)], equal_nan=True):
                raise ChainEquivalenceError(
                    f"chain {self.name!r}: dat {d.name!r} diverged from "
                    f"eager execution (max abs diff "
                    f"{np.max(np.abs(eager - lazy_dats[id(d)])):.3e})"
                )
        for g in gbls:
            if not np.array_equal(g._data, lazy_gbls[id(g)], equal_nan=True):
                raise ChainEquivalenceError(
                    f"chain {self.name!r}: global {g.name!r} diverged from "
                    f"eager execution ({g._data} != {lazy_gbls[id(g)]})"
                )


def _touched(pending: list[_Pending]) -> tuple[list, list]:
    """Unique dats and Globals any pending loop accesses."""
    dats: dict[int, object] = {}
    gbls: dict[int, object] = {}
    for p in pending:
        for a in p.loop.args:
            if a.is_dat:
                dats.setdefault(id(a.data), a.data)
            else:
                gbls.setdefault(id(a.data), a.data)
    return list(dats.values()), list(gbls.values())


@contextmanager
def _swapped_globals(group: list[_Pending]):
    """Bind each READ Global to its call-site snapshot for the duration."""
    saved: list[tuple[np.ndarray, np.ndarray]] = []
    for p in group:
        for i, snap in p.gbl_reads:
            g = p.loop.args[i].data
            saved.append((g._data, g._data.copy()))
            g._data[:] = snap
    try:
        yield
    finally:
        for arr, orig in reversed(saved):
            arr[:] = orig


# --------------------------------------------------------------------------
# thread-local plumbing + public API
# --------------------------------------------------------------------------

_tls = threading.local()


def _tls_get(name: str, default=None):
    return getattr(_tls, name, default)


def _tls_set(name: str, value) -> None:
    setattr(_tls, name, value)


def current_chain() -> LoopChain | None:
    """This thread's open chain (explicit or implicit), if any."""
    return _tls_get("chain")


def chain_stats() -> ChainStats:
    """Cumulative chain statistics for this thread."""
    stats = _tls_get("stats")
    if stats is None:
        stats = ChainStats()
        _tls_set("stats", stats)
    return stats


def reset_chain_stats() -> None:
    stats = ChainStats()
    _tls_set("stats", stats)
    chain = _tls_get("chain")
    if chain is not None:  # rebind a live implicit chain to the new counters
        chain.stats = stats


def submit(loop: "ParLoop", backend: str | None) -> bool:
    """Offer a loop to the lazy runtime; True iff it was enqueued.

    Loops enqueue when a :func:`loop_chain` context is open or
    ``Config.lazy`` is set. Sanitize mode always executes eagerly (the
    race auditor inspects loops one at a time) — after flushing
    anything still pending so program order is preserved.
    """
    cfg = current_config()
    chain = _tls_get("chain")
    if cfg.sanitize or _tls_get("in_flush"):
        if chain is not None:
            chain.flush()
        return False
    if chain is not None and _tls_get("implicit") and not cfg.lazy:
        # Config.lazy was switched off: retire the implicit chain
        chain.flush()
        _tls_set("chain", None)
        chain = None
    if chain is None:
        if not cfg.lazy:
            return False
        chain = LoopChain("lazy")
        chain.stats = chain_stats()
        _tls_set("chain", chain)
        _tls_set("implicit", True)
    chain.enqueue(loop, backend)
    return True


def flush_chain() -> None:
    """Execute everything pending on this thread's chain (if any).

    Also retires the implicit chain when ``Config.lazy`` has been
    switched off, so ``set_config(lazy=False); flush_chain()`` fully
    restores eager semantics on this thread.
    """
    chain = _tls_get("chain")
    if chain is not None:
        chain.flush()
        if _tls_get("implicit") and not current_config().lazy:
            _tls_set("chain", None)


def sync_host_access() -> None:
    """Flush before host code observes dat/global data (hot no-op path)."""
    chain = _tls_get("chain")
    if chain is None or not chain.pending or _tls_get("in_flush"):
        return
    chain.flush()


def sync_global_write(g) -> None:
    """Flush before a host write to a Global a pending loop reduces into.

    Host writes to Globals that pending loops merely READ need no flush
    (those loops snapshotted their values at enqueue), which is what
    keeps e.g. per-stage RK coefficient updates from breaking chains.
    """
    chain = _tls_get("chain")
    if chain is None or not chain.pending or _tls_get("in_flush"):
        return
    if id(g) in chain._gbl_reductions:
        chain.flush()


@contextmanager
def loop_chain(name: str = "chain", enabled: bool | None = True):
    """Collect every par_loop in the body into one lazily-executed chain.

    ``enabled=True`` chains unconditionally; ``enabled=None`` chains
    only when ``Config.lazy`` is set (how library code like the Hydra
    solver marks chain boundaries without changing default behavior);
    ``enabled=False`` is a no-op. Nested chains join the outer one (the
    outer flush sees the whole sequence). The chain flushes on exit and
    whenever host code reads dat or Global data.
    """
    if enabled is None:
        enabled = current_config().lazy
    outer = _tls_get("chain")
    if not enabled or outer is not None:
        yield outer
        return
    chain = LoopChain(name)
    chain.stats = chain_stats()
    _tls_set("chain", chain)
    _tls_set("implicit", False)
    try:
        yield chain
    finally:
        try:
            chain.flush()
        finally:
            _tls_set("chain", None)
