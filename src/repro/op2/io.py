"""Snapshot I/O: save/load OP2 problems as .npz archives.

The paper's OP2 uses HDF5-based parallel I/O; this sandbox has no
h5py, so snapshots use numpy's npz container with the same structure:
set sizes, map tables, and dat payloads, each namespaced by kind.
Round-tripping a GlobalProblem is exact. All writers commit atomically
(tmp file + ``os.replace``), so a crash mid-save leaves the previous
archive intact instead of a torn zip that :func:`load_problem`
explodes on.
"""

from __future__ import annotations

import os

import numpy as np

from repro.op2.dat import Dat
from repro.op2.distribute import GlobalProblem
from repro.util.atomicio import atomic_savez


def save_problem(path: str | os.PathLike, problem: GlobalProblem) -> None:
    """Write a GlobalProblem to ``path`` (.npz appended if missing)."""
    payload: dict[str, np.ndarray] = {}
    for sname, size in problem.sets.items():
        payload[f"set:{sname}"] = np.array([size], dtype=np.int64)
    for mname, (from_s, to_s, values) in problem.maps.items():
        payload[f"map:{mname}:table"] = values
        payload[f"map:{mname}:sets"] = np.array([from_s, to_s])
    for dname, (sname, data) in problem.dats.items():
        payload[f"dat:{dname}:data"] = data
        payload[f"dat:{dname}:set"] = np.array([sname])
    atomic_savez(path, compressed=True, **payload)


def load_problem(path: str | os.PathLike) -> GlobalProblem:
    """Read a GlobalProblem written by :func:`save_problem`."""
    with np.load(path, allow_pickle=False) as archive:
        gp = GlobalProblem()
        for key in archive.files:
            if key.startswith("set:"):
                gp.add_set(key[4:], int(archive[key][0]))
        for key in archive.files:
            if key.startswith("map:") and key.endswith(":table"):
                name = key[4:-6]
                from_s, to_s = archive[f"map:{name}:sets"]
                gp.add_map(name, str(from_s), str(to_s), archive[key])
        for key in archive.files:
            if key.startswith("dat:") and key.endswith(":data"):
                name = key[4:-5]
                sname = str(archive[f"dat:{name}:set"][0])
                gp.add_dat(name, sname, archive[key])
        return gp


def save_dat(path: str | os.PathLike, dat: Dat) -> None:
    """Write one dat's owned values (e.g. a checkpointed flow field)."""
    atomic_savez(path, compressed=True, name=np.array([dat.name]),
                 set=np.array([dat.set.name]), data=dat.data_ro)


def load_dat_values(path: str | os.PathLike) -> tuple[str, str, np.ndarray]:
    """Read (dat name, set name, values) written by :func:`save_dat`."""
    with np.load(path, allow_pickle=False) as archive:
        return (str(archive["name"][0]), str(archive["set"][0]),
                archive["data"])
