"""Par-loop argument descriptors and their validation rules.

An :class:`Arg` bundles *what* is accessed (a Dat or Global), *through
which connectivity* (a Map and index, or directly), and *how*
(an :class:`~repro.op2.access.Access`). All structural legality checks
live here so every backend can assume well-formed loops.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.op2.access import Access, REDUCTIONS
from repro.op2.dat import Dat
from repro.op2.globals import Global
from repro.op2.map import ALL, Map, _AllIndices
from repro.op2.set import Set


@dataclass
class Arg:
    """One argument of a par_loop. Build via :meth:`dat` / :meth:`gbl`."""

    data: Dat | Global
    access: Access
    map: Optional[Map] = None
    idx: int | _AllIndices | None = None

    # -- constructors -----------------------------------------------------
    @classmethod
    def dat(cls, dat: Dat, access: Access, map: Map | None = None,
            idx: int | _AllIndices | None = None) -> "Arg":
        if not isinstance(access, Access):
            raise TypeError(f"access must be an Access, got {access!r}")
        if access in (Access.MIN, Access.MAX):
            raise ValueError("MIN/MAX accesses are reserved for Globals")
        if map is None:
            if idx is not None:
                raise ValueError("direct args must not pass idx")
        else:
            if map.to_set is not dat.set:
                raise ValueError(
                    f"map {map.name!r} targets set {map.to_set.name!r} but dat "
                    f"{dat.name!r} lives on {dat.set.name!r}"
                )
            if idx is None:
                raise ValueError("indirect args must pass idx (an int or op2.ALL)")
            if not isinstance(idx, _AllIndices) and not 0 <= idx < map.arity:
                raise ValueError(
                    f"idx {idx} out of range for map {map.name!r} arity {map.arity}"
                )
        return cls(data=dat, access=access, map=map, idx=idx)

    @classmethod
    def gbl(cls, g: Global, access: Access) -> "Arg":
        if access is not Access.READ and access not in REDUCTIONS:
            raise ValueError(f"Global access must be READ/INC/MIN/MAX, got {access}")
        return cls(data=g, access=access)

    # -- classification ----------------------------------------------------
    # Plain attributes, precomputed once: every backend and the chain
    # runtime consult these many times per loop, which made the former
    # properties a measurable share of loop-dispatch overhead.
    is_global: bool = dataclasses.field(init=False, repr=False, compare=False)
    is_dat: bool = dataclasses.field(init=False, repr=False, compare=False)
    is_direct: bool = dataclasses.field(init=False, repr=False, compare=False)
    is_indirect: bool = dataclasses.field(init=False, repr=False,
                                          compare=False)
    #: indirect arg passing the whole map row (idx=ALL)
    is_vector: bool = dataclasses.field(init=False, repr=False, compare=False)
    is_reduction: bool = dataclasses.field(init=False, repr=False,
                                           compare=False)

    def __post_init__(self) -> None:
        self.is_global = isinstance(self.data, Global)
        self.is_dat = isinstance(self.data, Dat)
        self.is_direct = self.is_dat and self.map is None
        self.is_indirect = self.is_dat and self.map is not None
        self.is_vector = self.is_indirect and isinstance(self.idx,
                                                         _AllIndices)
        self.is_reduction = self.is_global and self.access in REDUCTIONS

    @property
    def dim(self) -> int:
        return self.data.dim

    def validate_for(self, iterset: Set) -> None:
        """Check this arg is legal in a loop over ``iterset``."""
        if self.is_global:
            return
        assert isinstance(self.data, Dat)
        if self.map is None:
            if self.data.set is not iterset:
                raise ValueError(
                    f"direct arg on dat {self.data.name!r} (set "
                    f"{self.data.set.name!r}) in a loop over {iterset.name!r}"
                )
        else:
            if self.map.from_set is not iterset:
                raise ValueError(
                    f"map {self.map.name!r} is from set {self.map.from_set.name!r}, "
                    f"loop iterates over {iterset.name!r}"
                )
            if self.access is Access.RW:
                raise ValueError(
                    "indirect RW access is order-dependent and unsupported; "
                    "use INC (commutative) or restructure the loop"
                )

    def kernel_shape(self) -> tuple[int, ...]:
        """Shape of the per-element view the kernel receives."""
        if self.is_vector:
            assert self.map is not None
            return (self.map.arity, self.dim)
        return (self.dim,)

    def __repr__(self) -> str:
        if self.is_global:
            return f"Arg({self.data.name}, {self.access.name})"
        where = "direct" if self.map is None else f"{self.map.name}[{self.idx}]"
        return f"Arg({self.data.name}, {self.access.name}, {where})"
