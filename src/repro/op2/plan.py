"""Execution plans: conflict analysis and coloring for indirect loops.

When a par_loop increments data through a map, two elements that share
a target must not execute concurrently. OP2's plan construction
resolves this by coloring; we reproduce both granularities:

* **element coloring** — used by the ``coloring`` backend: elements of
  one color share no indirect-write target, so a whole color can be
  executed as one conflict-free vectorized scatter;
* **block coloring** — OP2's OpenMP plan shape (contiguous blocks
  colored by shared targets), exposed for the plan-quality ablation
  benchmark and the performance model's block statistics.

Conflict granularity follows the generated scatter code: each scalar
indirect-write argument scatters in its own serial statement, so two
arguments of one element may share a target without racing; a vector
(``idx=ALL``) argument scatters all its map columns in a *single*
statement, so its columns form one conflict unit.

Coloring is the sequential first-fit greedy OP2's plan construction
uses: walk the elements in order, give each the lowest color not yet
present on any of its conflict targets (tracked as per-target color
bitmasks). On a chain mesh this yields the classic 2 colors; color
count is bounded by the maximum conflict degree plus one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.op2.access import Access
from repro.op2.map import Map
from repro.telemetry.recorder import active_recorder

#: plan cache: signature tuple -> Plan (maps held strongly so ids stay valid)
_plan_cache: dict[tuple, "Plan | BlockPlan"] = {}


@dataclass
class Plan:
    """Element-coloring plan for one (loop signature, extent) combination."""

    extent: int
    colors: np.ndarray              #: per-element color, shape (extent,)
    ncolors: int
    color_groups: list[np.ndarray]  #: element indices per color
    _maps: tuple[Map, ...]          #: strong refs keeping cache keys valid

    @property
    def max_group(self) -> int:
        return max((len(g) for g in self.color_groups), default=0)


@dataclass
class BlockPlan:
    """OP2-style block plan: contiguous blocks colored by shared targets."""

    extent: int
    block_size: int
    nblocks: int
    block_colors: np.ndarray
    ncolors: int
    _maps: tuple[Map, ...]
    _native_cache: dict = field(default_factory=dict, repr=False,
                                compare=False)

    def blocks_of_color(self, color: int) -> list[tuple[int, int]]:
        """(start, end) ranges of the blocks with the given color."""
        out = []
        for b in np.nonzero(self.block_colors == color)[0]:
            start = int(b) * self.block_size
            out.append((start, min(start + self.block_size, self.extent)))
        return out

    def native_arrays(self, start: int, end: int
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Plan flattened for the compiled native wrapper's ABI.

        Returns contiguous int64 arrays ``(blk_lo, blk_hi, col_off)``:
        block ``b`` covers elements ``[blk_lo[b], blk_hi[b])`` clamped
        to ``[start, end)`` (empty blocks dropped), and color ``c``
        owns blocks ``[col_off[c], col_off[c + 1])``. Cached per
        ``(start, end)`` — the plan itself is already cached by loop
        signature, so repeated loop executions reuse the arrays.
        """
        key = (start, end)
        cached = self._native_cache.get(key)
        if cached is not None:
            return cached
        blk_lo: list[int] = []
        blk_hi: list[int] = []
        col_off: list[int] = [0]
        for color in range(self.ncolors):
            for lo, hi in self.blocks_of_color(color):
                lo, hi = max(lo, start), min(hi, end)
                if lo < hi:
                    blk_lo.append(lo)
                    blk_hi.append(hi)
            col_off.append(len(blk_lo))
        arrays = (np.asarray(blk_lo, dtype=np.int64),
                  np.asarray(blk_hi, dtype=np.int64),
                  np.asarray(col_off, dtype=np.int64))
        self._native_cache[key] = arrays
        return arrays


@dataclass
class _Unit:
    """One conflict unit: columns that scatter in the same statement."""

    target_size: int
    columns: list[np.ndarray]
    target_id: int = 0
    label: str = ""  #: human-readable id for sanitizer reports


def conflict_units(args, extent: int) -> list[_Unit]:
    """Conflict units for a loop's indirect-write arguments."""
    units: list[_Unit] = []
    for arg in args:
        if not (arg.is_indirect and arg.access in (Access.INC, Access.WRITE)):
            continue
        m = arg.map
        tsize = m.to_set.total_size
        if arg.is_vector:
            units.append(
                _Unit(tsize, [m.values[:extent, c] for c in range(m.arity)],
                      id(m.to_set), f"{arg.data.name} via {m.name}[*]")
            )
        else:
            units.append(_Unit(tsize, [m.values[:extent, arg.idx]],
                               id(m.to_set),
                               f"{arg.data.name} via {m.name}[{arg.idx}]"))
    return units


def _maps_of(args) -> tuple[Map, ...]:
    return tuple(
        a.map for a in args
        if a.is_indirect and a.access in (Access.INC, Access.WRITE)
    )


def _signature(args, extent: int) -> tuple:
    sig: list = [extent]
    for a in args:
        if a.is_indirect and a.access in (Access.INC, Access.WRITE):
            sig.append((id(a.map), "all" if a.is_vector else a.idx))
    return tuple(sig)


def _first_fit_colors(units: list[_Unit], n: int,
                      row_of: list[np.ndarray] | None = None
                      ) -> tuple[np.ndarray, int]:
    """OP2-style sequential first-fit greedy coloring.

    Walks items 0..n-1 in order; each takes the lowest color not yet
    used on any of its conflict targets, tracked as per-target color
    bitmasks (as in OP2's plan construction). ``row_of`` maps an item
    to the map rows it covers (identity for element coloring; the rows
    of a block for block coloring) via ``row_of[item] == item_index``.
    """
    colors = np.full(n, -1, dtype=np.int32)
    # Python ints as bitmasks: arbitrary color counts (a target shared by
    # k elements legitimately needs k colors)
    masks: list[list[int]] = [[0] * u.target_size for u in units]
    ncolors = 0
    for e in range(n):
        used = 0
        for mask, unit in zip(masks, units):
            for col in unit.columns:
                if row_of is None:
                    used |= mask[col[e]]
                else:
                    for r in row_of[e]:
                        used |= mask[col[r]]
        c = 0
        while used >> c & 1:
            c += 1
        colors[e] = c
        ncolors = max(ncolors, c + 1)
        bit = 1 << c
        for mask, unit in zip(masks, units):
            for col in unit.columns:
                if row_of is None:
                    mask[col[e]] |= bit
                else:
                    for r in row_of[e]:
                        mask[col[r]] |= bit
    return colors, ncolors


def build_plan(args, extent: int) -> Plan | None:
    """Element-coloring plan for a loop, or None if it needs no coloring."""
    units = conflict_units(args, extent)
    if not units:
        return None
    key = ("elem",) + _signature(args, extent)
    cached = _plan_cache.get(key)
    rec = active_recorder()
    if cached is not None:
        if rec is not None:
            rec.counter("op2.plan.cache_hit")
        return cached  # type: ignore[return-value]

    t0 = time.perf_counter()
    colors, ncolors = _first_fit_colors(units, extent)
    groups = [np.nonzero(colors == c)[0] for c in range(ncolors)]
    plan = Plan(extent=extent, colors=colors, ncolors=ncolors,
                color_groups=groups, _maps=_maps_of(args))
    if rec is not None:
        rec.add_span("build_plan", "op2.plan", t0, time.perf_counter(),
                     kind="elem", extent=extent, ncolors=ncolors)
        rec.counter("op2.plan.build")
    _plan_cache[key] = plan
    return plan


def build_block_plan(args, extent: int, block_size: int = 256) -> BlockPlan | None:
    """Block-coloring plan (OP2 OpenMP shape), or None if no conflicts.

    Unlike element coloring — where one color's scatter statements run
    serially, so distinct arguments never race — same-colored *blocks*
    execute fully concurrently. Any shared target between two blocks is
    therefore a conflict, so all writing columns per target set merge
    into a single conflict unit here.
    """
    units = conflict_units(args, extent)
    if not units:
        return None
    merged: dict[int, _Unit] = {}
    for u in units:
        slot = merged.setdefault(
            u.target_id, _Unit(u.target_size, [], u.target_id)
        )
        slot.columns.extend(u.columns)
    units = list(merged.values())
    key = ("block", block_size) + _signature(args, extent)
    cached = _plan_cache.get(key)
    rec = active_recorder()
    if cached is not None:
        if rec is not None:
            rec.counter("op2.plan.cache_hit")
        return cached  # type: ignore[return-value]

    t0 = time.perf_counter()
    nblocks = max(1, -(-extent // block_size))
    row_of = [
        np.arange(b * block_size, min((b + 1) * block_size, extent),
                  dtype=np.int64)
        for b in range(nblocks)
    ]
    block_colors, ncolors = _first_fit_colors(units, nblocks, row_of=row_of)

    plan = BlockPlan(extent=extent, block_size=block_size, nblocks=nblocks,
                     block_colors=block_colors, ncolors=ncolors,
                     _maps=_maps_of(args))
    if rec is not None:
        rec.add_span("build_plan", "op2.plan", t0, time.perf_counter(),
                     kind="block", extent=extent, ncolors=ncolors)
        rec.counter("op2.plan.build")
    _plan_cache[key] = plan
    return plan


def clear_plan_cache() -> None:
    """Drop all cached plans (tests and long-lived drivers)."""
    _plan_cache.clear()


def clear_native_plan_arrays() -> None:
    """Drop the flattened native-ABI arrays cached on live block plans.

    The coloring itself stays valid across native-backend resets (it
    depends only on maps and extents), but the flattened
    ``(blk_lo, blk_hi, col_off)`` arrays are part of the compiled
    wrappers' ABI — :func:`~repro.op2.backends.native.
    reset_native_state` clears them so backend-switching tests never
    observe stale plan arrays from a previous toolchain configuration.
    """
    for plan in _plan_cache.values():
        cache = getattr(plan, "_native_cache", None)
        if cache:
            cache.clear()


def validate_coloring(args, plan: Plan) -> bool:
    """Check no color group has an intra-unit duplicate scatter target."""
    for unit in conflict_units(args, plan.extent):
        for group in plan.color_groups:
            targets = np.concatenate([col[group] for col in unit.columns])
            if np.unique(targets).size != targets.size:
                return False
    return True
