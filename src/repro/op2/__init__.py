"""repro.op2 — an OP2-style DSL for unstructured-mesh computations.

Declares a problem as sets, maps (connectivity), dats (data on sets)
and Globals, and executes computation as parallel loops over sets with
per-argument access descriptors. A real code-generation layer turns
each scalar elemental kernel into specialized source per backend
(sequential reference, vectorized/SIMD, coloring/OpenMP-analogue,
atomics/CUDA-analogue), and the distribution machinery runs the same
loops over simulated-MPI ranks with owner-compute redundant execution
and halo exchanges.

Quick example::

    from repro import op2

    nodes = op2.Set(4, "nodes")
    edges = op2.Set(3, "edges")
    pedge = op2.Map(edges, nodes, 2, [[0, 1], [1, 2], [2, 3]], "pedge")
    val = op2.Dat(nodes, 1, data=[[1.0], [2.0], [3.0], [4.0]], name="val")
    acc = op2.Dat(nodes, 1, name="acc")

    def spread(v1, v2, a1, a2):
        a1[0] += v2[0]
        a2[0] += v1[0]

    op2.par_loop(op2.Kernel(spread), edges,
                 val.arg(op2.READ, pedge, 0), val.arg(op2.READ, pedge, 1),
                 acc.arg(op2.INC, pedge, 0), acc.arg(op2.INC, pedge, 1))
"""

from repro.op2.access import INC, MAX, MIN, READ, RW, WRITE, Access
from repro.op2.args import Arg
from repro.op2.backends import BACKENDS, resolve_backend
from repro.op2.chain import (
    ChainEquivalenceError,
    ChainStats,
    LoopChain,
    chain_stats,
    current_chain,
    flush_chain,
    loop_chain,
    reset_chain_stats,
)
from repro.op2.config import Config, configure, current_config, set_config, set_default_config
from repro.op2.dat import Dat
from repro.op2.distribute import (
    GlobalProblem,
    LocalProblem,
    RankLayout,
    build_local_problem,
    build_serial_problem,
    derive_owner_from_map,
    gather_dat,
    plan_distribution,
)
from repro.op2.globals import Global
from repro.op2.halo import ExchangePlan, SetHalo, exchange_halos, exchange_halos_multi
from repro.op2.kernel import Kernel, KernelParseError
from repro.op2.map import ALL, Map
from repro.op2.parloop import ParLoop, par_loop
from repro.op2.plan import (
    BlockPlan,
    Plan,
    build_block_plan,
    build_plan,
    clear_plan_cache,
    validate_coloring,
)
from repro.op2.set import Set

__all__ = [
    # access
    "Access", "READ", "WRITE", "RW", "INC", "MIN", "MAX",
    # data model
    "Set", "Map", "ALL", "Dat", "Global", "Arg",
    # kernels & loops
    "Kernel", "KernelParseError", "ParLoop", "par_loop",
    # plans
    "Plan", "BlockPlan", "build_plan", "build_block_plan",
    "clear_plan_cache", "validate_coloring",
    # backends & config
    "BACKENDS", "resolve_backend", "Config", "configure",
    "current_config", "set_config", "set_default_config",
    # distribution
    "GlobalProblem", "LocalProblem", "RankLayout", "plan_distribution",
    "build_local_problem", "build_serial_problem", "derive_owner_from_map", "gather_dat",
    "SetHalo", "ExchangePlan", "exchange_halos", "exchange_halos_multi",
    # lazy execution / loop chains
    "LoopChain", "loop_chain", "flush_chain", "current_chain",
    "chain_stats", "reset_chain_stats", "ChainStats", "ChainEquivalenceError",
]
