"""OP2 globals: values not attached to any set.

A :class:`Global` plays two roles, mirroring OP2's ``op_arg_gbl``:

* accessed ``READ`` it is a runtime constant broadcast to every
  element (rotor angular velocity, CFL number, gas constants...);
* accessed ``INC``/``MIN``/``MAX`` it is a reduction target (residual
  norms, time-step minima) combined across elements — and across ranks
  in distributed runs.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.op2.access import Access, REDUCTIONS

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.args import Arg

_gbl_ids = itertools.count()

_chain_sync = None
_chain_sync_write = None


def _sync_chain() -> None:
    """Flush any pending loop chain before host code observes the value
    (a pending loop may still reduce into it). Lazily imported to break
    the module-level import cycle."""
    global _chain_sync
    if _chain_sync is None:
        from repro.op2.chain import sync_host_access

        _chain_sync = sync_host_access
    _chain_sync()


def _sync_write(g: "Global") -> None:
    """Flush only if a pending loop reduces into ``g`` (READ snapshots
    make plain reads of the old value safe without flushing)."""
    global _chain_sync_write
    if _chain_sync_write is None:
        from repro.op2.chain import sync_global_write

        _chain_sync_write = sync_global_write
    _chain_sync_write(g)


class Global:
    """A ``dim``-vector global value.

    ``data`` is always a 1-D float array of length ``dim``; scalars
    are exposed via :attr:`value` for convenience.
    """

    def __init__(self, dim: int, value=0.0, name: str | None = None,
                 dtype=np.float64) -> None:
        if dim < 1:
            raise ValueError(f"Global dim must be >= 1, got {dim}")
        self.dim = int(dim)
        self.name = name if name is not None else f"gbl{next(_gbl_ids)}"
        arr = np.atleast_1d(np.array(value, dtype=dtype))
        if arr.shape == (1,) and dim > 1:
            arr = np.full(dim, arr[0], dtype=dtype)
        if arr.shape != (self.dim,):
            raise ValueError(
                f"Global value must have {dim} components, got shape {arr.shape}"
            )
        self._data = arr

    @property
    def data(self) -> np.ndarray:
        """The stored value; flushes any pending loop chain first."""
        _sync_chain()
        return self._data

    @data.setter
    def data(self, arr: np.ndarray) -> None:
        # pending loops snapshot READ values at enqueue, so only a
        # pending *reduction* into this global forces a flush
        _sync_write(self)
        self._data = np.asarray(arr)

    @property
    def value(self) -> float:
        """Scalar view (dim-1 globals only)."""
        if self.dim != 1:
            raise ValueError(f"Global {self.name!r} has dim {self.dim}, not scalar")
        return float(self.data[0])

    @value.setter
    def value(self, v: float) -> None:
        if self.dim != 1:
            raise ValueError(f"Global {self.name!r} has dim {self.dim}, not scalar")
        _sync_write(self)
        self._data[0] = v

    def neutral(self, access: Access) -> np.ndarray:
        """Identity element for a reduction under ``access``."""
        if access is Access.INC:
            return np.zeros(self.dim, dtype=self.data.dtype)
        if access is Access.MIN:
            return np.full(self.dim, np.inf, dtype=self.data.dtype)
        if access is Access.MAX:
            return np.full(self.dim, -np.inf, dtype=self.data.dtype)
        raise ValueError(f"no neutral element for access {access}")

    def combine(self, access: Access, contribution: np.ndarray) -> None:
        """Fold one reduction contribution into the stored value."""
        if access is Access.INC:
            self.data += contribution
        elif access is Access.MIN:
            np.minimum(self.data, contribution, out=self.data)
        elif access is Access.MAX:
            np.maximum(self.data, contribution, out=self.data)
        else:
            raise ValueError(f"access {access} is not a reduction")

    def arg(self, access: Access) -> "Arg":
        """Build a par_loop argument for this global."""
        from repro.op2.args import Arg

        if access not in REDUCTIONS and access is not Access.READ:
            raise ValueError(
                f"Global access must be READ or a reduction, got {access}"
            )
        return Arg.gbl(self, access)

    def __repr__(self) -> str:
        return f"Global({self.name!r}, dim={self.dim}, data={self.data})"
