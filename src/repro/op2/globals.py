"""OP2 globals: values not attached to any set.

A :class:`Global` plays two roles, mirroring OP2's ``op_arg_gbl``:

* accessed ``READ`` it is a runtime constant broadcast to every
  element (rotor angular velocity, CFL number, gas constants...);
* accessed ``INC``/``MIN``/``MAX`` it is a reduction target (residual
  norms, time-step minima) combined across elements — and across ranks
  in distributed runs.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.op2.access import Access, REDUCTIONS

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.args import Arg

_gbl_ids = itertools.count()


class Global:
    """A ``dim``-vector global value.

    ``data`` is always a 1-D float array of length ``dim``; scalars
    are exposed via :attr:`value` for convenience.
    """

    def __init__(self, dim: int, value=0.0, name: str | None = None,
                 dtype=np.float64) -> None:
        if dim < 1:
            raise ValueError(f"Global dim must be >= 1, got {dim}")
        self.dim = int(dim)
        self.name = name if name is not None else f"gbl{next(_gbl_ids)}"
        arr = np.atleast_1d(np.array(value, dtype=dtype))
        if arr.shape == (1,) and dim > 1:
            arr = np.full(dim, arr[0], dtype=dtype)
        if arr.shape != (self.dim,):
            raise ValueError(
                f"Global value must have {dim} components, got shape {arr.shape}"
            )
        self.data = arr

    @property
    def value(self) -> float:
        """Scalar view (dim-1 globals only)."""
        if self.dim != 1:
            raise ValueError(f"Global {self.name!r} has dim {self.dim}, not scalar")
        return float(self.data[0])

    @value.setter
    def value(self, v: float) -> None:
        if self.dim != 1:
            raise ValueError(f"Global {self.name!r} has dim {self.dim}, not scalar")
        self.data[0] = v

    def neutral(self, access: Access) -> np.ndarray:
        """Identity element for a reduction under ``access``."""
        if access is Access.INC:
            return np.zeros(self.dim, dtype=self.data.dtype)
        if access is Access.MIN:
            return np.full(self.dim, np.inf, dtype=self.data.dtype)
        if access is Access.MAX:
            return np.full(self.dim, -np.inf, dtype=self.data.dtype)
        raise ValueError(f"no neutral element for access {access}")

    def combine(self, access: Access, contribution: np.ndarray) -> None:
        """Fold one reduction contribution into the stored value."""
        if access is Access.INC:
            self.data += contribution
        elif access is Access.MIN:
            np.minimum(self.data, contribution, out=self.data)
        elif access is Access.MAX:
            np.maximum(self.data, contribution, out=self.data)
        else:
            raise ValueError(f"access {access} is not a reduction")

    def arg(self, access: Access) -> "Arg":
        """Build a par_loop argument for this global."""
        from repro.op2.args import Arg

        if access not in REDUCTIONS and access is not Access.READ:
            raise ValueError(
                f"Global access must be READ or a reduction, got {access}"
            )
        return Arg.gbl(self, access)

    def __repr__(self) -> str:
        return f"Global({self.name!r}, dim={self.dim}, data={self.data})"
