"""Distribution planning: a serial OP2 problem → per-rank local problems.

Given plain-array descriptions of sets, maps and dats plus an owner
array per set, :func:`plan_distribution` computes, for every rank, the
classic OP2 halo layout::

    [ owned | import-exec | import-nonexec ]

* an element of an iteration set S belongs to rank p's **exec halo** if
  p does not own it but some map out of S reaches an element p owns —
  those elements are executed redundantly so p's owned data receives
  every indirect increment locally;
* an element of a target set T is in p's **nonexec halo** if it is
  referenced by p's owned∪exec rows of any map into T but is neither
  owned nor already an exec-halo entry of T.

The planner also builds the matched exchange plans: ``"full"``
(all halo entries), ``"exec"`` (exec region only — what a direct read
under redundant execution needs), and one per map (exactly the halo
entries reachable through that map — the partial-halo optimization).

Planning runs centrally (it needs the global picture); each rank then
materializes its :class:`LocalProblem` with :func:`build_local_problem`
inside its own thread, attaching its communicator to the halos.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.op2.dat import Dat
from repro.op2.halo import ExchangePlan, SetHalo
from repro.op2.map import Map
from repro.op2.set import Set
from repro.smpi import SimComm
from repro.util.validation import check_index_array


@dataclass
class GlobalProblem:
    """Plain-array description of a serial problem to distribute."""

    sets: dict[str, int] = field(default_factory=dict)
    #: name -> (from_set, to_set, values (size, arity))
    maps: dict[str, tuple[str, str, np.ndarray]] = field(default_factory=dict)
    #: name -> (set, data (size, dim))
    dats: dict[str, tuple[str, np.ndarray]] = field(default_factory=dict)

    def add_set(self, name: str, size: int) -> None:
        self.sets[name] = int(size)

    def add_map(self, name: str, from_set: str, to_set: str,
                values: np.ndarray) -> None:
        values = np.ascontiguousarray(values, dtype=np.int64)
        if values.ndim != 2 or values.shape[0] != self.sets[from_set]:
            raise ValueError(
                f"map {name!r} values must be ({self.sets[from_set]}, arity), "
                f"got {values.shape}"
            )
        check_index_array(f"map {name!r}", values, self.sets[to_set])
        self.maps[name] = (from_set, to_set, values)

    def add_dat(self, name: str, set_name: str, data: np.ndarray) -> None:
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        if data.shape[0] != self.sets[set_name]:
            raise ValueError(
                f"dat {name!r} must have {self.sets[set_name]} rows, "
                f"got {data.shape}"
            )
        self.dats[name] = (set_name, data)


@dataclass
class SetLayout:
    """One rank's view of one set, in global ids."""

    owned: np.ndarray
    exec_halo: np.ndarray
    nonexec_halo: np.ndarray
    #: plans in local indices; neighbour keys are communicator ranks
    plans: dict[str, ExchangePlan] = field(default_factory=dict)

    @property
    def global_ids(self) -> np.ndarray:
        return np.concatenate([self.owned, self.exec_halo, self.nonexec_halo])

    @property
    def n_local(self) -> int:
        return len(self.owned) + len(self.exec_halo) + len(self.nonexec_halo)


@dataclass
class RankLayout:
    """Everything one rank needs to build its local problem."""

    rank: int
    set_layouts: dict[str, SetLayout] = field(default_factory=dict)
    #: localized map tables covering [owned + exec] rows of the from-set
    map_tables: dict[str, np.ndarray] = field(default_factory=dict)


def derive_owner_from_map(values: np.ndarray, target_owner: np.ndarray) -> np.ndarray:
    """Derive element ownership as the owner of each element's first target.

    The standard recipe for derived sets (edges, cells) once a primary
    set (nodes) has been partitioned.
    """
    return target_owner[values[:, 0]]


def plan_distribution(problem: GlobalProblem, nranks: int,
                      owners: dict[str, np.ndarray]) -> list[RankLayout]:
    """Compute per-rank layouts for ``problem`` under ``owners``.

    ``owners[set_name][gid]`` is the owning rank of each element; every
    set of the problem must be covered.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    for sname, size in problem.sets.items():
        if sname not in owners:
            raise ValueError(f"no owner array supplied for set {sname!r}")
        arr = owners[sname]
        if arr.shape != (size,):
            raise ValueError(
                f"owners[{sname!r}] must have shape ({size},), got {arr.shape}"
            )
        check_index_array(f"owners[{sname!r}]", arr, nranks)

    layouts = [RankLayout(rank=p) for p in range(nranks)]

    # -- owned ---------------------------------------------------------
    owned: dict[str, list[np.ndarray]] = {}
    for sname, size in problem.sets.items():
        own = owners[sname]
        owned[sname] = [np.nonzero(own == p)[0] for p in range(nranks)]

    # -- exec halos ------------------------------------------------------
    # element e of S (owner q) is exec-halo on p != q if any map out of S
    # reaches a target owned by p from row e
    exec_sets: dict[str, list[set[int]]] = {
        sname: [set() for _ in range(nranks)] for sname in problem.sets
    }
    for _mname, (from_s, to_s, values) in problem.maps.items():
        row_owner = owners[from_s]
        tgt_owner = owners[to_s][values]  # (n, arity)
        for col in range(values.shape[1]):
            across = tgt_owner[:, col] != row_owner
            rows = np.nonzero(across)[0]
            dest = tgt_owner[rows, col]
            for p in np.unique(dest):
                exec_sets[from_s][int(p)].update(rows[dest == p].tolist())
    exec_halo: dict[str, list[np.ndarray]] = {
        sname: [np.array(sorted(s), dtype=np.int64) for s in per_rank]
        for sname, per_rank in exec_sets.items()
    }

    # -- nonexec halos -----------------------------------------------------
    nonexec_sets: dict[str, list[set[int]]] = {
        sname: [set() for _ in range(nranks)] for sname in problem.sets
    }
    for p in range(nranks):
        for _mname, (from_s, to_s, values) in problem.maps.items():
            rows = np.concatenate([owned[from_s][p], exec_halo[from_s][p]])
            if rows.size == 0:
                continue
            referenced = np.unique(values[rows])
            mine = owners[to_s][referenced] == p
            foreign = referenced[~mine]
            in_exec = np.isin(foreign, exec_halo[to_s][p], assume_unique=False)
            nonexec_sets[to_s][p].update(foreign[~in_exec].tolist())
    nonexec_halo: dict[str, list[np.ndarray]] = {
        sname: [np.array(sorted(s), dtype=np.int64) for s in per_rank]
        for sname, per_rank in nonexec_sets.items()
    }

    # -- local numbering and global->local lookups -------------------------
    glob2loc: dict[tuple[str, int], np.ndarray] = {}
    for sname, size in problem.sets.items():
        for p in range(nranks):
            layout = SetLayout(
                owned=owned[sname][p],
                exec_halo=exec_halo[sname][p],
                nonexec_halo=nonexec_halo[sname][p],
            )
            layouts[p].set_layouts[sname] = layout
            lookup = np.full(size, -1, dtype=np.int64)
            gids = layout.global_ids
            lookup[gids] = np.arange(len(gids))
            glob2loc[(sname, p)] = lookup

    # -- localized map tables --------------------------------------------
    for mname, (from_s, to_s, values) in problem.maps.items():
        for p in range(nranks):
            rows = np.concatenate([owned[from_s][p], exec_halo[from_s][p]])
            local = glob2loc[(to_s, p)][values[rows]]
            if (local < 0).any():  # pragma: no cover - planner invariant
                raise RuntimeError(
                    f"map {mname!r}: rank {p} references targets missing from "
                    f"its halo — distribution planning bug"
                )
            layouts[p].map_tables[mname] = local

    # -- exchange plans -----------------------------------------------------
    for sname, size in problem.sets.items():
        own = owners[sname]
        for p in range(nranks):
            layout = layouts[p].set_layouts[sname]
            n_owned = len(layout.owned)
            halo_gids = np.concatenate([layout.exec_halo, layout.nonexec_halo])
            halo_local = np.arange(n_owned, n_owned + len(halo_gids))

            scopes: dict[str, tuple[np.ndarray, np.ndarray]] = {
                "full": (halo_gids, halo_local),
                "exec": (layout.exec_halo,
                         np.arange(n_owned, n_owned + len(layout.exec_halo))),
            }
            # per-map partial scopes: halo entries reachable via that map.
            # Two depths per map (the paper's PH optimization refined):
            #   "m"      — reachable from owned *and* exec rows (depth 2,
            #              what redundant exec-halo execution reads);
            #   "m@own"  — reachable from owned rows only (depth 1,
            #              sufficient for loops without indirect writes,
            #              which never execute the exec halo).
            for mname, (from_s, to_s, _values) in problem.maps.items():
                if to_s != sname:
                    continue
                table = layouts[p].map_tables.get(mname)
                if table is None or table.size == 0:
                    scopes[mname] = (halo_gids[:0], halo_local[:0])
                    scopes[f"{mname}@own"] = (halo_gids[:0], halo_local[:0])
                    continue
                referenced = np.unique(table)
                ref_halo = referenced[referenced >= n_owned]
                gids = layout.global_ids[ref_halo]
                scopes[mname] = (gids, ref_halo)
                n_own_rows = len(owned[from_s][p])
                own_table = table[:n_own_rows]
                if own_table.size == 0:
                    scopes[f"{mname}@own"] = (halo_gids[:0], halo_local[:0])
                else:
                    own_ref = np.unique(own_table)
                    own_halo = own_ref[own_ref >= n_owned]
                    scopes[f"{mname}@own"] = (layout.global_ids[own_halo],
                                              own_halo)

            for scope_name, (gids, locals_) in scopes.items():
                plan = ExchangePlan(name=scope_name)
                if gids.size:
                    src_ranks = own[gids]
                    for q in np.unique(src_ranks):
                        sel = src_ranks == q
                        plan.recv[int(q)] = locals_[sel]
                        # matched send list on q: positions in q's owned block
                        send_local = np.searchsorted(owned[sname][int(q)],
                                                     gids[sel])
                        q_plan = layouts[int(q)].set_layouts[sname].plans
                        q_entry = q_plan.setdefault(scope_name,
                                                    ExchangePlan(name=scope_name))
                        q_entry.send[p] = send_local
                layout.plans.setdefault(scope_name, plan)
                layout.plans[scope_name].recv = plan.recv

    return layouts


@dataclass
class LocalProblem:
    """One rank's materialized sets, maps and dats."""

    comm: SimComm
    sets: dict[str, Set] = field(default_factory=dict)
    maps: dict[str, Map] = field(default_factory=dict)
    dats: dict[str, Dat] = field(default_factory=dict)
    layout: RankLayout | None = None

    def set_(self, name: str) -> Set:
        return self.sets[name]

    def map_(self, name: str) -> Map:
        return self.maps[name]

    def dat(self, name: str) -> Dat:
        return self.dats[name]


def build_local_problem(problem: GlobalProblem, layout: RankLayout,
                        comm: SimComm) -> LocalProblem:
    """Materialize ``layout`` into live OP2 objects on this rank."""
    local = LocalProblem(comm=comm, layout=layout)
    for sname in problem.sets:
        sl = layout.set_layouts[sname]
        s = Set(len(sl.owned), name=sname)
        s.halo = SetHalo(
            comm=comm,
            n_exec=len(sl.exec_halo),
            n_nonexec=len(sl.nonexec_halo),
            global_ids=sl.global_ids,
            plans=sl.plans,
        )
        local.sets[sname] = s
    for mname, (from_s, to_s, _values) in problem.maps.items():
        table = layout.map_tables[mname]
        local.maps[mname] = Map(
            local.sets[from_s], local.sets[to_s], table.shape[1], table,
            name=mname,
        )
    for dname, (sname, data) in problem.dats.items():
        sl = layout.set_layouts[sname]
        local_data = data[sl.global_ids]
        d = Dat(local.sets[sname], data.shape[1], data=local_data, name=dname)
        d.mark_halo_fresh("full")
        local.dats[dname] = d
    return local


def build_serial_problem(problem: GlobalProblem) -> LocalProblem:
    """Materialize a GlobalProblem as plain serial OP2 objects (no halos)."""
    local = LocalProblem(comm=None)  # type: ignore[arg-type]
    for sname, size in problem.sets.items():
        local.sets[sname] = Set(size, name=sname)
    for mname, (from_s, to_s, values) in problem.maps.items():
        local.maps[mname] = Map(local.sets[from_s], local.sets[to_s],
                                values.shape[1], values, name=mname)
    for dname, (sname, data) in problem.dats.items():
        local.dats[dname] = Dat(local.sets[sname], data.shape[1],
                                data=data.copy(), name=dname)
    return local


def gather_dat(comm: SimComm, dat: Dat, layout: RankLayout,
               global_size: int) -> np.ndarray | None:
    """Collect owned rows from every rank into the global array (root 0)."""
    sl = layout.set_layouts[dat.set.name]
    pieces = comm.gather((sl.owned, dat.data_ro.copy()), root=0)
    if comm.rank != 0:
        return None
    out = np.zeros((global_size, dat.dim), dtype=dat.dtype)
    for gids, values in pieces:
        out[gids] = values
    return out
