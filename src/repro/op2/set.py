"""OP2 sets: the element classes of an unstructured mesh.

A :class:`Set` is just a named cardinality (nodes, edges, cells,
boundary faces...). In a distributed run each rank holds a *local*
Set whose entries are laid out as::

    [ owned | import-exec halo | import-nonexec halo ]

* *owned* elements belong to this rank;
* the *import-exec* halo holds copies of neighbour-owned elements that
  this rank executes **redundantly** so its owned data receives every
  indirect increment locally (the paper's "owner compute model with
  halo exchanges and redundant computation");
* the *import-nonexec* halo holds copies that are only ever read.

The halo metadata itself (exchange lists, per-map partial-exchange
lists) lives in :class:`repro.op2.halo.SetHalo` and is attached by the
distribution machinery.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.halo import SetHalo

_set_ids = itertools.count()


class Set:
    """A class of mesh elements.

    Parameters
    ----------
    size:
        Number of elements this instance holds. For a serial Set this
        is the global count; for a distributed local Set it is the
        number of *owned* elements.
    name:
        Diagnostic name; also used in generated-code identifiers, so
        it must be a valid Python identifier.
    """

    def __init__(self, size: int, name: str | None = None) -> None:
        check_positive("Set size", size, strict=False)
        self.size = int(size)
        self.name = name if name is not None else f"set{next(_set_ids)}"
        if not self.name.isidentifier():
            raise ValueError(f"Set name must be an identifier, got {self.name!r}")
        #: attached by repro.op2.distribute for distributed runs
        self.halo: "SetHalo | None" = None

    # -- layout ----------------------------------------------------------
    @property
    def exec_size(self) -> int:
        """Extent of redundant execution: owned + import-exec halo."""
        if self.halo is None:
            return self.size
        return self.size + self.halo.n_exec

    @property
    def total_size(self) -> int:
        """All locally stored entries: owned + exec + nonexec halo."""
        if self.halo is None:
            return self.size
        return self.size + self.halo.n_exec + self.halo.n_nonexec

    @property
    def is_distributed(self) -> bool:
        return self.halo is not None

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        if self.halo is None:
            return f"Set({self.name!r}, size={self.size})"
        return (
            f"Set({self.name!r}, owned={self.size}, "
            f"exec={self.halo.n_exec}, nonexec={self.halo.n_nonexec})"
        )
