"""OP2 maps: explicit connectivity between sets.

A :class:`Map` is the unstructured-mesh analogue of a stencil: a table
giving, for each element of ``from_set``, the ``arity`` elements of
``to_set`` it connects to (e.g. the 2 nodes of each edge, the 8 nodes
of each hex cell).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.op2.set import Set
from repro.util.validation import check_index_array

_map_ids = itertools.count()


class _AllIndices:
    """Sentinel: pass the whole map row (an ``(arity, dim)`` view) to the kernel."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "OP_ALL"


#: Use as the ``idx`` of an indirect argument to hand the kernel every
#: mapped element at once (OP2's vector-argument form).
ALL = _AllIndices()


class Map:
    """Connectivity table from ``from_set`` to ``to_set``.

    ``values`` must have shape ``(from_set.total_size, arity)`` —
    i.e. for distributed sets the table covers owned + halo rows —
    with every entry a valid local index into ``to_set``.
    """

    def __init__(self, from_set: Set, to_set: Set, arity: int,
                 values: np.ndarray, name: str | None = None) -> None:
        if arity < 1:
            raise ValueError(f"Map arity must be >= 1, got {arity}")
        values = np.ascontiguousarray(values, dtype=np.int64)
        # serial sets: table covers the whole set; distributed local sets:
        # the table must cover every executable row (owned + exec halo).
        want_rows = from_set.exec_size
        if values.shape != (want_rows, arity):
            raise ValueError(
                f"Map values must have shape ({want_rows}, {arity}), "
                f"got {values.shape}"
            )
        check_index_array("Map values", values, to_set.total_size)
        self.from_set = from_set
        self.to_set = to_set
        self.arity = int(arity)
        self.values = values
        self.values.flags.writeable = False
        self.name = name if name is not None else f"map{next(_map_ids)}"

    def column(self, idx: int) -> np.ndarray:
        """The ``idx``-th target of every row (read-only view)."""
        if not 0 <= idx < self.arity:
            raise IndexError(f"map index {idx} out of range [0, {self.arity})")
        return self.values[:, idx]

    def __repr__(self) -> str:
        return (
            f"Map({self.name!r}, {self.from_set.name}->{self.to_set.name}, "
            f"arity={self.arity})"
        )
