"""OP2 access descriptors.

Every argument to an ``op_par_loop`` declares *how* the elemental
kernel touches it. The descriptor is what lets the code generator pick
a data-race-resolution strategy per backend (staging + coloring,
atomic scatter, owner-compute redundant execution, ...) without ever
inspecting the kernel body's intent.
"""

from __future__ import annotations

import enum


class Access(enum.Enum):
    """How a kernel accesses one argument (mirrors OP2's ``op_access``)."""

    READ = "read"    #: read-only
    WRITE = "write"  #: write-only (every executed element fully defines it)
    RW = "rw"        #: read and write (direct args only, to stay race-free)
    INC = "inc"      #: increment-only; contributions commute and are summed
    MIN = "min"      #: global minimum reduction (Globals only)
    MAX = "max"      #: global maximum reduction (Globals only)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OP_{self.name}"


READ = Access.READ
WRITE = Access.WRITE
RW = Access.RW
INC = Access.INC
MIN = Access.MIN
MAX = Access.MAX

#: Accesses that read existing values (trigger halo refresh).
READING = frozenset({Access.READ, Access.RW})
#: Accesses that modify values (mark halos dirty).
WRITING = frozenset({Access.WRITE, Access.RW, Access.INC})
#: Accesses valid for reduction Globals.
REDUCTIONS = frozenset({Access.INC, Access.MIN, Access.MAX})
