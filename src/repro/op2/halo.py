"""Halo layout and exchange for distributed sets.

Implements the paper's distributed-memory model: owner-compute with
redundant execution over an import-exec halo, forward halo exchanges
with dirty-bit tracking, plus the two communication optimizations the
paper quantifies in Table III:

* **partial halo exchanges (PH)** — exchange only the halo entries a
  loop actually references through its map (or, for direct reads under
  redundant execution, only the exec region) instead of the full halo;
* **grouped halo messages (GH)** — pack all the dats a loop needs into
  one message per neighbour instead of one message per dat.

Exchange plans are *named*: ``"full"``, ``"exec"``, and one per map.
:class:`~repro.op2.dat.Dat` freshness records which plan last refreshed
it, so a partial refresh only satisfies reads through the same map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.telemetry.recorder import span as _tspan

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.dat import Dat
    from repro.op2.set import Set
    from repro.smpi import SimComm

#: base tag for halo messages; per-dat offset keeps matching unambiguous
_HALO_TAG = 7000


@dataclass
class ExchangePlan:
    """Matched send/recv index lists for one named exchange scope.

    ``send[q]`` lists *owned* local indices this rank packs for
    neighbour ``q``; ``recv[q]`` lists the local halo indices filled by
    the matching message. Ranks are communicator ranks of the halo's
    comm. Lists are index-aligned pairwise across the two ranks.
    """

    name: str
    send: dict[int, np.ndarray] = field(default_factory=dict)
    recv: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def recv_entries(self) -> int:
        return sum(len(v) for v in self.recv.values())

    @property
    def send_entries(self) -> int:
        return sum(len(v) for v in self.send.values())


@dataclass
class SetHalo:
    """Distributed layout of one set on one rank."""

    comm: "SimComm"
    n_exec: int
    n_nonexec: int
    global_ids: np.ndarray              #: local index -> global id
    plans: dict[str, ExchangePlan] = field(default_factory=dict)

    def plan_for(self, scope: str) -> ExchangePlan:
        """The plan for ``scope``, falling back to the full exchange."""
        return self.plans.get(scope) or self.plans["full"]


def exchange_halos(sset: "Set", dats: Sequence["Dat"], scope: str = "full",
                   grouped: bool = False) -> None:
    """Refresh halo copies of ``dats`` (all on ``sset``) from owners.

    Collective over the halo's communicator: every rank of the set's
    communicator must call with the same dats/scope/grouped. With
    ``grouped`` the values of all dats travel in a single packed
    message per neighbour (the paper's GH optimization); otherwise one
    message per (dat, neighbour).
    """
    halo = sset.halo
    if halo is None or not dats:
        return
    for d in dats:
        if d.set is not sset:
            raise ValueError(
                f"dat {d.name!r} lives on {d.set.name!r}, not {sset.name!r}"
            )
    plan = halo.plan_for(scope)
    effective = plan.name
    comm = halo.comm
    comm.set_phase(f"halo:{effective}" + (":grouped" if grouped else ""))

    with _tspan("exchange_halos", "op2.halo.exchange", set=sset.name,
                scope=effective, grouped=grouped, ndats=len(dats)):
        if grouped:
            for nbr, sidx in plan.send.items():
                packed = np.concatenate(
                    [d.data_with_halos[sidx].reshape(len(sidx), -1)
                     for d in dats],
                    axis=1,
                )
                comm.send(packed, dest=nbr, tag=_HALO_TAG)
            for nbr, ridx in plan.recv.items():
                packed = comm.recv(source=nbr, tag=_HALO_TAG)
                offset = 0
                for d in dats:
                    d.data_with_halos[ridx] = packed[:, offset:offset + d.dim]
                    offset += d.dim
        else:
            for i, d in enumerate(dats):
                for nbr, sidx in plan.send.items():
                    comm.send(d.data_with_halos[sidx], dest=nbr,
                              tag=_HALO_TAG + i)
            for i, d in enumerate(dats):
                for nbr, ridx in plan.recv.items():
                    d.data_with_halos[ridx] = comm.recv(source=nbr,
                                                        tag=_HALO_TAG + i)

    comm.set_phase("compute")
    for d in dats:
        d.mark_halo_fresh(effective)
