"""Halo layout and exchange for distributed sets.

Implements the paper's distributed-memory model: owner-compute with
redundant execution over an import-exec halo, forward halo exchanges
with dirty-bit tracking, plus the two communication optimizations the
paper quantifies in Table III:

* **partial halo exchanges (PH)** — exchange only the halo entries a
  loop actually references through its map (or, for direct reads under
  redundant execution, only the exec region) instead of the full halo;
* **grouped halo messages (GH)** — pack all the dats a loop needs into
  one message per neighbour instead of one message per dat.

Exchange plans are *named*: ``"full"``, ``"exec"``, and two per map —
``"m"`` (halo entries reachable from owned *and* exec rows of the map,
what redundant exec-halo execution reads) and ``"m@own"`` (reachable
from owned rows only, sufficient for loops without indirect writes,
which never execute the exec halo). :class:`~repro.op2.dat.Dat`
freshness records which plan last refreshed it; :func:`scope_covers`
defines the subsumption order — ``"full"`` covers everything and
``"m"`` covers ``"m@own"`` — so a deeper refresh satisfies shallower
reads without re-exchanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.telemetry.recorder import active_recorder, span as _tspan

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.dat import Dat
    from repro.op2.set import Set
    from repro.smpi import SimComm

#: base tag for halo messages; per-dat offset keeps matching unambiguous
_HALO_TAG = 7000

#: suffix distinguishing a map's depth-1 scope from its depth-2 scope
_OWN_SUFFIX = "@own"


def scope_covers(have: str, need: str) -> bool:
    """True when a refresh for scope ``have`` satisfies a ``need`` read.

    The subsumption order of named scopes: ``"full"`` covers every
    scope, and a map's depth-2 scope ``"m"`` covers its own depth-1
    scope ``"m@own"`` (owned-row references are a subset of
    owned+exec-row references). Everything else must match exactly.
    """
    if have == need or have == "full":
        return True
    return need == have + _OWN_SUFFIX


def marker_covers(marker: object, need: str) -> bool:
    """Does a dat freshness marker satisfy a read needing ``need``?

    ``marker`` is ``None`` (stale), a scope name, or a frozenset of
    scope names (after a chained multi-scope exchange).
    """
    if marker is None:
        return False
    if isinstance(marker, frozenset):
        return any(marker_covers(m, need) for m in marker)
    return scope_covers(marker, need)  # type: ignore[arg-type]


def normalize_scopes(scopes) -> frozenset:
    """Drop scopes subsumed by another member of the set.

    ``{"m", "m@own"}`` collapses to ``{"m"}`` and any set containing
    ``"full"`` collapses to ``{"full"}`` — fewer scopes means smaller
    union plans and better plan-cache reuse.
    """
    scopes = frozenset(scopes)
    if "full" in scopes:
        return frozenset({"full"})
    return frozenset(
        s for s in scopes
        if not any(o != s and scope_covers(o, s) for o in scopes)
    )


def resolve_eager_scope(scopes) -> str:
    """The single plan scope eager execution uses for a scope set.

    One distinct scope (after normalization) is used as-is; genuinely
    mixed needs fall back to the full exchange — the eager path sends
    one message batch per (set, scope) group and cannot union plans the
    way the chain runtime does.
    """
    norm = normalize_scopes(scopes)
    if len(norm) == 1:
        return next(iter(norm))
    return "full"


@dataclass
class ExchangePlan:
    """Matched send/recv index lists for one named exchange scope.

    ``send[q]`` lists *owned* local indices this rank packs for
    neighbour ``q``; ``recv[q]`` lists the local halo indices filled by
    the matching message. Ranks are communicator ranks of the halo's
    comm. Lists are index-aligned pairwise across the two ranks.
    """

    name: str
    send: dict[int, np.ndarray] = field(default_factory=dict)
    recv: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def recv_entries(self) -> int:
        return sum(len(v) for v in self.recv.values())

    @property
    def send_entries(self) -> int:
        return sum(len(v) for v in self.send.values())


@dataclass
class SetHalo:
    """Distributed layout of one set on one rank."""

    comm: "SimComm"
    n_exec: int
    n_nonexec: int
    global_ids: np.ndarray              #: local index -> global id
    plans: dict[str, ExchangePlan] = field(default_factory=dict)
    _union_plans: dict = field(default_factory=dict, repr=False)

    def plan_for(self, scope: str) -> ExchangePlan:
        """The plan for ``scope``, falling back to the full exchange."""
        return self.plans.get(scope) or self.plans["full"]

    def union_plan(self, scopes: frozenset) -> ExchangePlan:
        """A plan covering every scope in ``scopes`` at once.

        Built by concatenating the per-scope send/recv segments in
        sorted scope order and dropping repeat entries at their later
        positions. Per-scope segments are pairwise index-aligned across
        ranks and a repeated entry names the same entity on both sides,
        so first-occurrence dedup keeps sender and receiver aligned —
        the union plan is as collective-safe as its constituents.
        """
        scopes = normalize_scopes(scopes)
        if "full" in scopes or any(s not in self.plans for s in scopes):
            return self.plans["full"]
        if len(scopes) == 1:
            return self.plans[next(iter(scopes))]
        cached = self._union_plans.get(scopes)
        if cached is not None:
            return cached
        send: dict[int, list] = {}
        recv: dict[int, list] = {}
        for s in sorted(scopes):
            plan = self.plans[s]
            for nbr, idx in plan.send.items():
                send.setdefault(nbr, []).append(idx)
            for nbr, idx in plan.recv.items():
                recv.setdefault(nbr, []).append(idx)
        union = ExchangePlan(
            name="+".join(sorted(scopes)),
            send={n: _dedup_concat(parts) for n, parts in send.items()},
            recv={n: _dedup_concat(parts) for n, parts in recv.items()},
        )
        self._union_plans[scopes] = union
        return union


def _dedup_concat(parts: list) -> np.ndarray:
    """Concatenate index segments, keeping only first occurrences."""
    cat = np.concatenate(parts)
    _, first = np.unique(cat, return_index=True)
    return cat[np.sort(first)]


def exchange_nbytes(plan: ExchangePlan, dats: Sequence["Dat"]) -> int:
    """Exact payload bytes this rank sends executing ``plan`` for ``dats``.

    The single source of truth for halo payload sizing: exchange paths
    compute their telemetry from it and tests pin ledger bytes against
    it, so partial exchanges cannot double-count. Matches what the
    traffic ledger records for the equivalent sends (entries × dim ×
    itemsize per dat per neighbour; same-dtype dats assumed for grouped
    packing, which is how every solver in this repo packs).
    """
    per_entry = sum(d.dim * d.dtype.itemsize for d in dats)
    return plan.send_entries * per_entry


def exchange_messages(plan: ExchangePlan, ndats: int, grouped: bool) -> int:
    """Messages this rank sends executing ``plan`` (eager protocol)."""
    return len(plan.send) * (1 if grouped else ndats)


def _account_exchange(nbytes: int, messages: int,
                      full_nbytes: int, full_messages: int) -> None:
    """Emit the op2-level halo traffic counters for one exchange.

    ``*_saved`` counters measure against the full-plan baseline for the
    same dats — the counter-verified claim that partial/depth-aware
    exchanges move fewer bytes. Counters are additive across exchanges;
    smpi-level ``smpi.nbytes`` counters are emitted by the communicator
    itself, so this layer never re-records wire bytes.
    """
    rec = active_recorder()
    if rec is None:
        return
    rec.counter("op2.halo.nbytes", nbytes)
    rec.counter("op2.halo.messages", messages)
    rec.counter("op2.halo.nbytes_saved", max(0, full_nbytes - nbytes))
    rec.counter("op2.halo.messages_saved", max(0, full_messages - messages))


def exchange_halos(sset: "Set", dats: Sequence["Dat"], scope: str = "full",
                   grouped: bool = False) -> None:
    """Refresh halo copies of ``dats`` (all on ``sset``) from owners.

    Collective over the halo's communicator: every rank of the set's
    communicator must call with the same dats/scope/grouped. With
    ``grouped`` the values of all dats travel in a single packed
    message per neighbour (the paper's GH optimization); otherwise one
    message per (dat, neighbour).
    """
    halo = sset.halo
    if halo is None or not dats:
        return
    for d in dats:
        if d.set is not sset:
            raise ValueError(
                f"dat {d.name!r} lives on {d.set.name!r}, not {sset.name!r}"
            )
    plan = halo.plan_for(scope)
    effective = plan.name
    comm = halo.comm
    comm.set_phase(f"halo:{effective}" + (":grouped" if grouped else ""))

    with _tspan("exchange_halos", "op2.halo.exchange", set=sset.name,
                scope=effective, grouped=grouped, ndats=len(dats)):
        if grouped:
            for nbr, sidx in plan.send.items():
                packed = np.concatenate(
                    [d.data_with_halos[sidx].reshape(len(sidx), -1)
                     for d in dats],
                    axis=1,
                )
                comm.send(packed, dest=nbr, tag=_HALO_TAG)
            for nbr, ridx in plan.recv.items():
                packed = comm.recv(source=nbr, tag=_HALO_TAG)
                offset = 0
                for d in dats:
                    d.data_with_halos[ridx] = packed[:, offset:offset + d.dim]
                    offset += d.dim
        else:
            for i, d in enumerate(dats):
                for nbr, sidx in plan.send.items():
                    comm.send(d.data_with_halos[sidx], dest=nbr,
                              tag=_HALO_TAG + i)
            for i, d in enumerate(dats):
                for nbr, ridx in plan.recv.items():
                    d.data_with_halos[ridx] = comm.recv(source=nbr,
                                                        tag=_HALO_TAG + i)
    full = halo.plans["full"]
    _account_exchange(
        exchange_nbytes(plan, dats),
        exchange_messages(plan, len(dats), grouped),
        exchange_nbytes(full, dats),
        exchange_messages(full, len(dats), grouped),
    )

    comm.set_phase("compute")
    for d in dats:
        d.mark_halo_fresh(effective)


@dataclass
class PendingExchange:
    """An in-flight split-phase exchange: sends posted, receives due.

    Produced by :func:`exchange_halos_multi_begin`; every rank must
    complete it with :func:`exchange_halos_multi_end` in the same order
    it was begun relative to other exchanges on the same communicator
    (tags keep concurrent in-flight exchanges unambiguous).
    """

    sset: "Set"
    resolved: list          #: (dat, union plan, scopes) per dat
    tag: int
    sent: int               #: messages this rank posted


def exchange_halos_multi_begin(
        sset: "Set", dat_scopes: Sequence[tuple["Dat", frozenset]],
        tag: int = _HALO_TAG) -> PendingExchange | None:
    """Post the send half of a batched multi-dat exchange.

    Packs, per neighbour, one message carrying every dat's
    :meth:`SetHalo.union_plan` entries and posts it without waiting.
    The matching :func:`exchange_halos_multi_end` call completes the
    receives — compute issued in between overlaps the communication
    (the chain runtime's latency hiding). Returns ``None`` when the set
    has no halo or nothing to exchange.
    """
    halo = sset.halo
    if halo is None or not dat_scopes:
        return None
    resolved = []
    for d, scopes in dat_scopes:
        if d.set is not sset:
            raise ValueError(
                f"dat {d.name!r} lives on {d.set.name!r}, not {sset.name!r}"
            )
        resolved.append((d, halo.union_plan(scopes), scopes))
    comm = halo.comm
    comm.set_phase("halo:chain")
    with _tspan("exchange_begin", "op2.halo.exchange", set=sset.name,
                ndats=len(resolved),
                scopes=[p.name for _, p, _ in resolved]):
        sent = 0
        for nbr in sorted({n for _, p, _ in resolved for n in p.send}):
            # skip-if-empty must mirror the receive side: segment lengths
            # are pairwise aligned, so both ranks agree on emptiness
            parts = [d.data_with_halos[p.send[nbr]].ravel()
                     for d, p, _ in resolved
                     if nbr in p.send and len(p.send[nbr])]
            if parts:
                comm.send(np.concatenate(parts), dest=nbr, tag=tag)
                sent += 1
    full = halo.plans["full"]
    _account_exchange(
        sum(exchange_nbytes(p, [d]) for d, p, _ in resolved),
        sent,
        exchange_nbytes(full, [d for d, _, _ in resolved]),
        exchange_messages(full, len(resolved), grouped=True),
    )
    comm.set_phase("compute")
    return PendingExchange(sset=sset, resolved=resolved, tag=tag, sent=sent)


def exchange_halos_multi_end(pending: PendingExchange | None) -> int:
    """Complete a split-phase exchange: receive, unpack, mark fresh.

    Returns the number of messages the begin half sent on this rank.
    """
    if pending is None:
        return 0
    resolved = pending.resolved
    comm = pending.sset.halo.comm
    comm.set_phase("halo:chain")
    with _tspan("exchange_end", "op2.halo.exchange", set=pending.sset.name,
                ndats=len(resolved)):
        for nbr in sorted({n for _, p, _ in resolved for n in p.recv}):
            expect = [(d, p.recv[nbr]) for d, p, _ in resolved
                      if nbr in p.recv and len(p.recv[nbr])]
            if not expect:
                continue
            packed = comm.recv(source=nbr, tag=pending.tag)
            offset = 0
            for d, ridx in expect:
                n = len(ridx) * d.dim
                d.data_with_halos[ridx] = (
                    packed[offset:offset + n].reshape(len(ridx), -1))
                offset += n
    comm.set_phase("compute")
    for d, plan, scopes in resolved:
        d.mark_halo_fresh("full" if plan.name == "full"
                          else frozenset(scopes))
    return pending.sent


def exchange_halos_multi(sset: "Set",
                         dat_scopes: Sequence[tuple["Dat", frozenset]]
                         ) -> int:
    """One batched exchange refreshing each dat for its own scope union.

    The loop-chain runtime's exchange primitive: all dats on ``sset``
    travel in a single packed message per neighbour, each contributing
    exactly the entries of its :meth:`SetHalo.union_plan`. Collective
    over the halo's communicator — every rank must call with the same
    dats (in the same order) and scope sets. Each dat is marked fresh
    for its full scope set. Returns the number of messages sent by this
    rank.
    """
    return exchange_halos_multi_end(
        exchange_halos_multi_begin(sset, dat_scopes))
