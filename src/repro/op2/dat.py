"""OP2 dats: data defined on the elements of a set."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.op2.access import Access
from repro.op2.map import Map
from repro.op2.set import Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.args import Arg

_dat_ids = itertools.count()

_chain_sync = None


def _sync_chain() -> None:
    """Flush any pending loop chain before host code observes data.

    Imported lazily: dat -> chain -> backends -> ... -> dat is a cycle
    at module-import time but not at first call.
    """
    global _chain_sync
    if _chain_sync is None:
        from repro.op2.chain import sync_host_access

        _chain_sync = sync_host_access
    _chain_sync()


class Dat:
    """Per-element data: ``dim`` values of ``dtype`` on each element.

    Storage always covers the full local layout of the set (owned +
    halos for distributed sets) as a contiguous ``(total_size, dim)``
    array, so generated kernels index it uniformly.

    Halo freshness is tracked per dat: any par_loop that writes or
    increments the dat invalidates halo copies; the next loop that
    would read stale halo entries triggers an exchange. ``fresh_for``
    records *what* the last exchange refreshed — ``"full"`` or the
    single :class:`Map` used for a partial-halo exchange (the paper's
    PH optimization).
    """

    def __init__(self, dataset: Set, dim: int, data: np.ndarray | None = None,
                 dtype=np.float64, name: str | None = None) -> None:
        if dim < 1:
            raise ValueError(f"Dat dim must be >= 1, got {dim}")
        self.set = dataset
        self.dim = int(dim)
        self.name = name if name is not None else f"dat{next(_dat_ids)}"
        if not self.name.isidentifier():
            raise ValueError(f"Dat name must be an identifier, got {self.name!r}")
        shape = (dataset.total_size, self.dim)
        if data is None:
            self._data = np.zeros(shape, dtype=dtype)
        else:
            arr = np.array(data, dtype=dtype)
            if arr.ndim == 1:
                arr = arr.reshape(-1, 1)
            if arr.shape == (dataset.size, self.dim) and dataset.total_size != dataset.size:
                # caller supplied owned entries only; allocate halo slots
                full = np.zeros(shape, dtype=dtype)
                full[: dataset.size] = arr
                arr = full
            if arr.shape != shape:
                raise ValueError(
                    f"Dat data must have shape {shape} (or owned-only "
                    f"({dataset.size}, {self.dim})), got {arr.shape}"
                )
            self._data = np.ascontiguousarray(arr)
        self.dtype = self._data.dtype
        #: True when halo copies match owner values.
        self.halo_fresh: bool = dataset.total_size == dataset.size
        #: "full", or the Map a partial exchange refreshed, or None.
        self.fresh_for: object = "full" if self.halo_fresh else None

    # -- data access ---------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """Writable view of the *owned* entries. Marks halos stale."""
        _sync_chain()
        self.mark_halo_stale()
        return self._data[: self.set.size]

    @property
    def data_ro(self) -> np.ndarray:
        """Read-only view of the owned entries."""
        _sync_chain()
        view = self._data[: self.set.size]
        view = view.view()
        view.flags.writeable = False
        return view

    @property
    def data_with_halos(self) -> np.ndarray:
        """Writable view including halo entries (runtime internals only)."""
        _sync_chain()
        return self._data

    def mark_halo_stale(self) -> None:
        if self.set.total_size != self.set.size:
            self.halo_fresh = False
            self.fresh_for = None

    def mark_halo_fresh(self, scope: object = "full") -> None:
        self.halo_fresh = True
        self.fresh_for = scope

    def is_fresh_for(self, scope: object) -> bool:
        """Was the halo refreshed recently enough for a read via ``scope``?

        ``scope`` is ``"full"`` (direct read that touches all halo
        entries) or a named partial scope. Subsumption follows
        :func:`~repro.op2.halo.scope_covers`: a full refresh satisfies
        any scope and a map's depth-2 refresh satisfies its depth-1
        scope — ``fresh_for`` is a frozenset after a chained
        multi-scope exchange.
        """
        from repro.op2.halo import marker_covers

        if not self.halo_fresh:
            return False
        return marker_covers(self.fresh_for, scope)

    # -- arg construction -------------------------------------------------
    def arg(self, access: Access, map: Map | None = None, idx=None) -> "Arg":
        """Build a par_loop argument accessing this dat."""
        from repro.op2.args import Arg

        return Arg.dat(self, access, map, idx)

    # -- convenience field algebra (owned entries; halo goes stale) -------
    def zero(self) -> None:
        """Set owned entries to zero."""
        self.data[:] = 0.0

    def scale(self, alpha: float) -> None:
        """Multiply owned entries by ``alpha`` in place."""
        view = self.data
        view *= alpha

    def copy_from(self, other: "Dat") -> None:
        """Copy ``other``'s owned entries into this dat."""
        self._check_compatible(other)
        self.data[:] = other.data_ro

    def axpy(self, alpha: float, x: "Dat") -> None:
        """self += alpha * x over owned entries."""
        self._check_compatible(x)
        view = self.data
        view += alpha * x.data_ro

    def _check_compatible(self, other: "Dat") -> None:
        if other.set is not self.set or other.dim != self.dim:
            raise ValueError(
                f"dat {other.name!r} (set {other.set.name!r}, dim "
                f"{other.dim}) is incompatible with {self.name!r} "
                f"(set {self.set.name!r}, dim {self.dim})"
            )

    def duplicate(self, name: str | None = None) -> "Dat":
        """Deep copy with identical layout and freshness reset."""
        _sync_chain()
        out = Dat(self.set, self.dim, data=self._data.copy(), dtype=self.dtype,
                  name=name or f"{self.name}_copy")
        out.halo_fresh = self.halo_fresh
        out.fresh_for = self.fresh_for
        return out

    def norm(self) -> float:
        """L2 norm of owned entries (local; callers allreduce if needed)."""
        _sync_chain()
        return float(np.sqrt(np.sum(self._data[: self.set.size] ** 2)))

    def __repr__(self) -> str:
        return f"Dat({self.name!r}, set={self.set.name}, dim={self.dim})"
