"""Concurrency-correctness tooling for the simulated cluster.

One import surface for the three sanitizers that guard the paper's
correctness invariants:

* **Deterministic scheduling** —
  :class:`~repro.smpi.schedule.DeterministicScheduler` serializes rank
  threads under a seeded, replayable interleaving;
  :func:`~repro.smpi.schedule.sweep_schedules` runs N seeds and hands
  back per-run :class:`~repro.smpi.schedule.ScheduleRun` ledgers whose
  fingerprints expose schedule-dependent message orders.
* **Deadlock detection** — every blocking SMPI operation registers a
  :class:`~repro.smpi.deadlock.WaitEdge` in a
  :class:`~repro.smpi.deadlock.WaitRegistry`; a genuine wait-for cycle
  (or a wait on an exited rank) raises
  :class:`~repro.smpi.errors.DeadlockError` naming the full cycle in
  milliseconds instead of ripening into the 120 s watchdog.
* **Race sanitizing** — the
  :class:`~repro.op2.backends.sanitizer.SanitizerBackend` OP2 backend
  executes coloring plans while auditing per-element write-sets,
  raising :class:`~repro.op2.backends.sanitizer.RaceError` if two
  same-color elements touch one dat entry.

This package is a pure façade: the implementations live in
``repro.smpi`` and ``repro.op2.backends`` (which must not depend on
this package), re-exported here so tests and the ``repro sanitize``
CLI have one import point.
"""

from repro.op2.backends.sanitizer import (
    RaceError,
    RaceFinding,
    SanitizerBackend,
    check_block_plan,
    check_plan,
)
from repro.smpi.deadlock import DeadlockError, WaitEdge, WaitRegistry, format_cycle
from repro.smpi.schedule import DeterministicScheduler, ScheduleRun, sweep_schedules

__all__ = [
    "DeadlockError",
    "DeterministicScheduler",
    "RaceError",
    "RaceFinding",
    "SanitizerBackend",
    "ScheduleRun",
    "WaitEdge",
    "WaitRegistry",
    "check_block_plan",
    "check_plan",
    "format_cycle",
    "sweep_schedules",
]
