"""Plain-text table rendering for benchmark reports.

Every benchmark harness prints the rows/series the paper reports; this
module renders them in a fixed-width layout so the output diffs cleanly
between runs.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt_cell(value: Any, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = ".2f",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Floats are formatted with ``floatfmt``; all other values via
    ``str``. Raises ``ValueError`` on ragged rows so a benchmark that
    dropped a column fails loudly rather than printing garbage.
    """
    ncol = len(headers)
    cells: list[list[str]] = [[str(h) for h in headers]]
    for i, row in enumerate(rows):
        if len(row) != ncol:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {ncol}: {row!r}"
            )
        cells.append([_fmt_cell(v, floatfmt) for v in row])

    widths = [max(len(r[c]) for r in cells) for c in range(ncol)]
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
