"""ASCII rendering of 2-D scalar fields (Fig. 10-style contour plots).

The paper's Fig. 10 shows flow contours on a cylindrical mid-radius
cut (axial x circumferential). In a terminal-only environment we
render the same cut as a character-ramp raster, good enough to *see*
the pressure rising through the stages and the wakes slanting across
the sliding interfaces.
"""

from __future__ import annotations

import numpy as np

#: darkness ramp, light to dark
RAMP = " .:-=+*#%@"


def render_field(field: np.ndarray, width: int = 100, height: int = 24,
                 vmin: float | None = None, vmax: float | None = None,
                 title: str = "", xlabel: str = "",
                 column_marks: list[int] | None = None) -> str:
    """Render ``field`` (ny, nx) as an ASCII raster.

    The field is resampled (nearest) to the requested terminal size;
    ``column_marks`` draws ``|`` gutters at the given x columns of the
    *field* (e.g. sliding-interface positions). Returns the full text
    block including a value legend.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise ValueError(f"field must be 2-D, got shape {field.shape}")
    ny, nx = field.shape
    lo = float(np.nanmin(field)) if vmin is None else vmin
    hi = float(np.nanmax(field)) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0

    rows_idx = np.minimum((np.arange(height) * ny) // height, ny - 1)
    cols_idx = np.minimum((np.arange(width) * nx) // width, nx - 1)
    sampled = field[np.ix_(rows_idx, cols_idx)]
    levels = np.clip(((sampled - lo) / span) * (len(RAMP) - 1), 0,
                     len(RAMP) - 1).astype(int)

    mark_cols = set()
    if column_marks:
        for m in column_marks:
            mark_cols.add(int(np.searchsorted(cols_idx, m)))

    lines = []
    if title:
        lines.append(title)
    for r in range(height):
        chars = []
        for c in range(width):
            if c in mark_cols:
                chars.append("|")
            else:
                chars.append(RAMP[levels[r, c]])
        lines.append("".join(chars))
    if xlabel:
        lines.append(xlabel)
    lines.append(f"legend: '{RAMP[0]}'={lo:.4g}  ..  '{RAMP[-1]}'={hi:.4g}")
    return "\n".join(lines)


def render_series(x: np.ndarray, y: np.ndarray, width: int = 72,
                  height: int = 16, title: str = "") -> str:
    """Plot y(x) as an ASCII scatter/line (for pressure profiles)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    if x.size == 0:
        return title + "\n(empty series)"
    grid = [[" "] * width for _ in range(height)]
    xspan = x.max() - x.min() or 1.0
    yspan = y.max() - y.min() or 1.0
    for xi, yi in zip(x, y):
        c = int((xi - x.min()) / xspan * (width - 1))
        r = height - 1 - int((yi - y.min()) / yspan * (height - 1))
        grid[r][c] = "o"
    lines = [title] if title else []
    lines.append(f"{y.max():10.4g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y.min():10.4g} +" + "-" * width)
    lines.append(" " * 12 + f"x: {x.min():.4g} .. {x.max():.4g}")
    return "\n".join(lines)
