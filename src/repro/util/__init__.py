"""Shared utilities: timing, deterministic RNG, tables, validation."""

from repro.util.ascii_plot import render_field, render_series
from repro.util.atomicio import (
    atomic_savez,
    atomic_write_bytes,
    atomic_write_text,
    sha256_file,
)
from repro.util.timing import Timer, TimerRegistry
from repro.util.tables import format_table
from repro.util.validation import check_index_array, check_positive, check_shape

__all__ = [
    "atomic_savez",
    "atomic_write_bytes",
    "atomic_write_text",
    "render_field",
    "render_series",
    "sha256_file",
    "Timer",
    "TimerRegistry",
    "format_table",
    "check_index_array",
    "check_positive",
    "check_shape",
]
