"""Crash-safe file writes: tmp file + ``os.replace`` commit.

Checkpoints are only useful if a crash *during* the write cannot leave
a torn file where a valid one used to be. Every writer here stages
into a temporary sibling (same directory, so the rename never crosses
filesystems) and publishes with :func:`os.replace`, which POSIX
guarantees to be atomic: readers see either the old complete file or
the new complete file, never a prefix.
"""

from __future__ import annotations

import hashlib
import os
import uuid
from typing import Any

import numpy as np

__all__ = ["atomic_savez", "atomic_write_bytes", "atomic_write_text",
           "sha256_file"]


def _tmp_sibling(path: str) -> str:
    directory, name = os.path.split(path)
    return os.path.join(directory, f".{name}.{uuid.uuid4().hex[:12]}.tmp")


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp + ``os.replace``)."""
    path = os.fspath(path)
    tmp = _tmp_sibling(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_savez(path: str | os.PathLike, compressed: bool = False,
                 **arrays: Any) -> str:
    """``np.savez`` to ``path`` atomically; returns the final path.

    Numpy appends ``.npz`` when missing — the returned path includes
    it, and the temporary staging file is cleaned up on any failure,
    so a crash mid-write leaves either the previous archive or nothing,
    never a torn zip.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    tmp = _tmp_sibling(path)
    save = np.savez_compressed if compressed else np.savez
    try:
        with open(tmp, "wb") as fh:
            save(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def sha256_file(path: str | os.PathLike, chunk: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's contents (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()
