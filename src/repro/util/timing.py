"""Lightweight wall-clock timers with hierarchical accumulation.

The solver, coupler and benchmarks all report time breakdowns
(compute vs halo exchange vs coupler wait), so timers are first-class:
cheap to start/stop, nestable by name, and aggregatable across
simulated MPI ranks.

Timers double as telemetry span sources: give a timer (or its
registry) a ``cat`` and every completed interval is also recorded as a
span on the thread's active :class:`~repro.telemetry.recorder.RankRecorder`
— this is how the coupler's wait/serve timers show up on traces without
a second timing mechanism.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.telemetry.recorder import active_recorder


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Use either as a context manager or with explicit
    :meth:`start`/:meth:`stop` pairs. ``elapsed`` accumulates across
    start/stop cycles; ``count`` records the number of completed
    intervals so callers can compute means. When ``cat`` is set, each
    completed interval also emits a telemetry span under that category
    (no-op unless the thread has tracing enabled).
    """

    name: str = ""
    elapsed: float = 0.0
    count: int = 0
    cat: str | None = None
    _t0: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._t0 is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        t1 = time.perf_counter()
        dt = t1 - self._t0
        if self.cat is not None:
            rec = active_recorder()
            if rec is not None:
                rec.add_span(self.name, self.cat, self._t0, t1)
        self._t0 = None
        self.elapsed += dt
        self.count += 1
        return dt

    @property
    def running(self) -> bool:
        return self._t0 is not None

    @property
    def mean(self) -> float:
        """Mean interval length (0.0 if never stopped)."""
        return self.elapsed / self.count if self.count else 0.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._t0 = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class TimerRegistry:
    """A named collection of :class:`Timer` objects.

    Each rank of a simulated MPI run owns one registry; the driver
    merges registries to report per-phase maxima/means, mirroring how
    the paper reports coupler-wait percentages.

    ``categories`` maps timer names to telemetry span categories
    (``default_category`` covers the rest; pass ``None`` to keep
    unlisted timers off traces).
    """

    def __init__(self, categories: dict[str, str] | None = None,
                 default_category: str | None = None) -> None:
        self._timers: dict[str, Timer] = {}
        self._categories = dict(categories or {})
        self._default_category = default_category

    def __getitem__(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            cat = self._categories.get(name, self._default_category)
            timer = Timer(name=name, cat=cat)
            self._timers[name] = timer
        return timer

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def names(self) -> list[str]:
        return sorted(self._timers)

    def elapsed(self, name: str) -> float:
        """Total accumulated seconds for ``name`` (0.0 if absent)."""
        timer = self._timers.get(name)
        return timer.elapsed if timer else 0.0

    def as_dict(self) -> dict[str, float]:
        return {n: t.elapsed for n, t in self._timers.items()}

    def reset(self) -> None:
        for timer in self._timers.values():
            timer.reset()

    @staticmethod
    def merge(registries: list["TimerRegistry"]) -> dict[str, dict[str, float]]:
        """Aggregate many registries into per-name min/max/mean/sum."""
        names: set[str] = set()
        for reg in registries:
            names.update(reg._timers)
        out: dict[str, dict[str, float]] = {}
        for name in sorted(names):
            vals = [reg.elapsed(name) for reg in registries]
            out[name] = {
                "min": min(vals),
                "max": max(vals),
                "mean": sum(vals) / len(vals),
                "sum": sum(vals),
            }
        return out
