"""Lightweight wall-clock timers with hierarchical accumulation.

The solver, coupler and benchmarks all report time breakdowns
(compute vs halo exchange vs coupler wait), so timers are first-class:
cheap to start/stop, nestable by name, and aggregatable across
simulated MPI ranks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Use either as a context manager or with explicit
    :meth:`start`/:meth:`stop` pairs. ``elapsed`` accumulates across
    start/stop cycles; ``count`` records the number of completed
    intervals so callers can compute means.
    """

    name: str = ""
    elapsed: float = 0.0
    count: int = 0
    _t0: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._t0 is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        dt = time.perf_counter() - self._t0
        self._t0 = None
        self.elapsed += dt
        self.count += 1
        return dt

    @property
    def running(self) -> bool:
        return self._t0 is not None

    @property
    def mean(self) -> float:
        """Mean interval length (0.0 if never stopped)."""
        return self.elapsed / self.count if self.count else 0.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._t0 = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class TimerRegistry:
    """A named collection of :class:`Timer` objects.

    Each rank of a simulated MPI run owns one registry; the driver
    merges registries to report per-phase maxima/means, mirroring how
    the paper reports coupler-wait percentages.
    """

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = {}

    def __getitem__(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = Timer(name=name)
            self._timers[name] = timer
        return timer

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def names(self) -> list[str]:
        return sorted(self._timers)

    def elapsed(self, name: str) -> float:
        """Total accumulated seconds for ``name`` (0.0 if absent)."""
        timer = self._timers.get(name)
        return timer.elapsed if timer else 0.0

    def as_dict(self) -> dict[str, float]:
        return {n: t.elapsed for n, t in self._timers.items()}

    def reset(self) -> None:
        for timer in self._timers.values():
            timer.reset()

    @staticmethod
    def merge(registries: list["TimerRegistry"]) -> dict[str, dict[str, float]]:
        """Aggregate many registries into per-name min/max/mean/sum."""
        names: set[str] = set()
        for reg in registries:
            names.update(reg._timers)
        out: dict[str, dict[str, float]] = {}
        for name in sorted(names):
            vals = [reg.elapsed(name) for reg in registries]
            out[name] = {
                "min": min(vals),
                "max": max(vals),
                "mean": sum(vals) / len(vals),
                "sum": sum(vals),
            }
        return out
