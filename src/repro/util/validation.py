"""Argument-validation helpers shared across the package.

These raise early, with messages naming the offending argument, so
errors surface at API boundaries instead of deep inside generated
kernels.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def check_positive(name: str, value: float | int, strict: bool = True) -> None:
    """Require ``value`` > 0 (or >= 0 when ``strict`` is False)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_shape(name: str, arr: np.ndarray, shape: Sequence[int | None]) -> None:
    """Require ``arr.shape`` to match ``shape`` (None = wildcard dim)."""
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {arr.shape}"
        )
    for axis, want in enumerate(shape):
        if want is not None and arr.shape[axis] != want:
            raise ValueError(
                f"{name} axis {axis} must have size {want}, got shape {arr.shape}"
            )


def check_index_array(name: str, arr: np.ndarray, upper: int) -> None:
    """Require an integer array with all values in ``[0, upper)``."""
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    if arr.size:
        lo = int(arr.min())
        hi = int(arr.max())
        if lo < 0 or hi >= upper:
            raise ValueError(
                f"{name} values must lie in [0, {upper}), got range [{lo}, {hi}]"
            )


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def as_float_array(name: str, value: Any, dim: int | None = None) -> np.ndarray:
    """Coerce ``value`` to a contiguous float64 array, optionally 1-D of ``dim``."""
    arr = np.ascontiguousarray(value, dtype=np.float64)
    if dim is not None:
        arr = np.atleast_1d(arr)
        if arr.ndim != 1 or arr.shape[0] != dim:
            raise ValueError(f"{name} must have {dim} components, got shape {arr.shape}")
    return arr
