"""Mini-Hydra: a vertex-centred edge-based finite-volume URANS-style
solver written entirely against the OP2 API.

Reproduces the numerical structure of Rolls-Royce's Hydra as the paper
describes it: the spatial operators are discretized into a residual by
parallel loops over mesh edges/boundary faces (indirect increments —
the motif OP2 exists for), and the flow is advanced by dual time
stepping — an outer physical step with BDF time derivative, and inner
explicit Runge-Kutta pseudo-time iterations. Rotor rows solve in their
own (translating, hence inertial in the mapped-Cartesian cascade
approximation) frame of reference; blade rows act on the flow through
a relaxation blade-force model whose wakes drive the unsteady
rotor-stator interaction the sliding planes must transport.
"""

from repro.hydra.gas import GAMMA, FlowState, conserved, primitives, total_pressure
from repro.hydra.problem import row_problem
from repro.hydra.solver import HydraSolver, Numerics, SolverDivergence
from repro.hydra.session import HydraSession

__all__ = [
    "GAMMA", "FlowState", "conserved", "primitives", "total_pressure",
    "row_problem", "HydraSolver", "Numerics", "HydraSession",
    "SolverDivergence",
]
