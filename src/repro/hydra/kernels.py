"""Mini-Hydra elemental kernels (the OP2 "science source").

Each function below is a restricted-language OP2 kernel describing the
computation for one mesh element. The code generator turns these into
sequential, vectorized, colored, and atomics parallelizations; nothing
here knows about parallelism — exactly the paper's Fig. 3 discipline.

Conserved state layout: ``q = [rho, rho*ux, rho*uy, rho*uz, E]``.
Residual convention: ``res`` accumulates the net *outflow* plus dual
time-derivative terms; the RK stage subtracts ``coef/vol * res``.
"""

from repro.op2 import Kernel


# -- residual assembly ---------------------------------------------------

def zero_res(res):
    """Reset the residual accumulator of one node."""
    for i in range(5):
        res[i] = 0.0


def flux_edge(q1, q2, w, r1, r2, gam):
    """Rusanov (local Lax-Friedrichs) flux along one interior edge.

    ``w`` is the dual-face normal (magnitude = face area) oriented from
    node 1 to node 2; the flux leaves node 1's control volume and
    enters node 2's.
    """
    gm1 = gam[0] - 1.0
    rl = q1[0]
    il = 1.0 / rl
    ul = q1[1] * il
    vl = q1[2] * il
    sl = q1[3] * il
    pl = gm1 * (q1[4] - 0.5 * rl * (ul * ul + vl * vl + sl * sl))
    rr = q2[0]
    ir = 1.0 / rr
    ur = q2[1] * ir
    vr = q2[2] * ir
    sr = q2[3] * ir
    pr = gm1 * (q2[4] - 0.5 * rr * (ur * ur + vr * vr + sr * sr))
    vnl = ul * w[0] + vl * w[1] + sl * w[2]
    vnr = ur * w[0] + vr * w[1] + sr * w[2]
    area = sqrt(w[0] * w[0] + w[1] * w[1] + w[2] * w[2])  # noqa: F821
    cl = sqrt(gam[0] * pl * il)  # noqa: F821
    cr = sqrt(gam[0] * pr * ir)  # noqa: F821
    lam = max(fabs(vnl) + cl * area, fabs(vnr) + cr * area)  # noqa: F821
    f0 = 0.5 * (rl * vnl + rr * vnr + lam * (q1[0] - q2[0]))
    f1 = 0.5 * (q1[1] * vnl + pl * w[0] + q2[1] * vnr + pr * w[0]
                + lam * (q1[1] - q2[1]))
    f2 = 0.5 * (q1[2] * vnl + pl * w[1] + q2[2] * vnr + pr * w[1]
                + lam * (q1[2] - q2[2]))
    f3 = 0.5 * (q1[3] * vnl + pl * w[2] + q2[3] * vnr + pr * w[2]
                + lam * (q1[3] - q2[3]))
    f4 = 0.5 * ((q1[4] + pl) * vnl + (q2[4] + pr) * vnr
                + lam * (q1[4] - q2[4]))
    r1[0] += f0
    r1[1] += f1
    r1[2] += f2
    r1[3] += f3
    r1[4] += f4
    r2[0] -= f0
    r2[1] -= f1
    r2[2] -= f2
    r2[3] -= f3
    r2[4] -= f4


def wall_flux(q, wz, r, gam):
    """Inviscid wall: only pressure acts, on the z-momentum.

    ``wz`` is the signed wall face area (outward z normal * area).
    """
    rho = q[0]
    ke = 0.5 * (q[1] * q[1] + q[2] * q[2] + q[3] * q[3]) / rho
    p = (gam[0] - 1.0) * (q[4] - ke)
    r[3] += p * wz[0]


def inlet_flux(q, a, r, gam, qin):
    """Subsonic inlet: ghost carries the prescribed density/velocity,
    interior pressure floats out (one incoming characteristic relaxed).

    ``qin = [rho, ux, uy, uz]`` of the inflow; face normal is
    ``(-a, 0, 0)`` (outward), area ``a``.
    """
    gm1 = gam[0] - 1.0
    rho = q[0]
    inv = 1.0 / rho
    u = q[1] * inv
    v = q[2] * inv
    s = q[3] * inv
    p_int = gm1 * (q[4] - 0.5 * rho * (u * u + v * v + s * s))
    rg = qin[0]
    ug = qin[1]
    vg = qin[2]
    sg = qin[3]
    eg = p_int / gm1 + 0.5 * rg * (ug * ug + vg * vg + sg * sg)
    # Rusanov against the ghost through n = (-a, 0, 0)
    vni = -u * a[0]
    vng = -ug * a[0]
    ci = sqrt(gam[0] * p_int * inv)  # noqa: F821
    cg = sqrt(gam[0] * p_int / rg)  # noqa: F821
    lam = max(fabs(vni) + ci * a[0], fabs(vng) + cg * a[0])  # noqa: F821
    r[0] += 0.5 * (rho * vni + rg * vng + lam * (q[0] - rg))
    r[1] += 0.5 * (q[1] * vni - p_int * a[0] + rg * ug * vng - p_int * a[0]
                   + lam * (q[1] - rg * ug))
    r[2] += 0.5 * (q[2] * vni + rg * vg * vng + lam * (q[2] - rg * vg))
    r[3] += 0.5 * (q[3] * vni + rg * sg * vng + lam * (q[3] - rg * sg))
    r[4] += 0.5 * ((q[4] + p_int) * vni + (eg + p_int) * vng
                   + lam * (q[4] - eg))


def outlet_flux(q, a, r, gam, pout):
    """Subsonic outlet: static pressure pinned to ``pout``, everything
    else extrapolated. Face normal ``(+a, 0, 0)``."""
    gm1 = gam[0] - 1.0
    rho = q[0]
    inv = 1.0 / rho
    u = q[1] * inv
    v = q[2] * inv
    s = q[3] * inv
    p_int = gm1 * (q[4] - 0.5 * rho * (u * u + v * v + s * s))
    # ghost: same density/velocity, pressure pinned to pout
    eg = pout[0] / gm1 + 0.5 * rho * (u * u + v * v + s * s)
    vn = u * a[0]
    c = sqrt(gam[0] * p_int * inv)  # noqa: F821
    lam = fabs(vn) + c * a[0]  # noqa: F821
    r[0] += rho * vn
    r[1] += q[1] * vn + 0.5 * (p_int + pout[0]) * a[0]
    r[2] += q[2] * vn
    r[3] += q[3] * vn
    r[4] += 0.5 * ((q[4] + p_int) * vn + (eg + pout[0]) * vn
                   + lam * (q[4] - eg))


def blade_force(q, xyz, vol, r, prm):
    """Blade-row body force: relax swirl towards the row's target and
    apply the rotor work (axial) forcing, modulated by blade wakes.

    ``prm = [rate, v_target, wake_amp, k_wave, f_axial]`` with
    ``k_wave = blade_count / r_mid`` so the wake pattern is periodic
    over the annulus and stationary in this row's frame.
    """
    rho = q[0]
    u = q[1] / rho
    v = q[2] / rho
    mod = 1.0 + prm[2] * cos(prm[3] * xyz[1])  # noqa: F821
    fy = prm[0] * rho * (prm[1] * mod - v)
    fx = prm[4] * rho * mod
    r[1] -= vol[0] * fx
    r[2] -= vol[0] * fy
    r[4] -= vol[0] * (fx * u + fy * v)


# -- time integration ---------------------------------------------------

def local_dt(q, h, gam, cfl, dtmin):
    """Pseudo-time step bound of one node (global MIN reduction).

    ``h`` is the minimum grid spacing — the conservative length scale
    for anisotropic cells (vol^(1/3) would overestimate the stable
    step when one direction is much finer than the others).
    """
    rho = q[0]
    inv = 1.0 / rho
    u = q[1] * inv
    v = q[2] * inv
    s = q[3] * inv
    p = (gam[0] - 1.0) * (q[4] - 0.5 * rho * (u * u + v * v + s * s))
    c = sqrt(gam[0] * p * inv)  # noqa: F821
    lam = fabs(u) + fabs(v) + fabs(s) + c  # noqa: F821
    dtmin[0] = min(dtmin[0], cfl[0] * h[0] / lam)  # noqa: F821


def save_state(q, q0):
    """Copy q into the RK stage base."""
    for i in range(5):
        q0[i] = q[i]


def rk_stage(q0, res, vol, mask, q, coef):
    """One low-storage RK stage: q = q0 - mask * coef/vol * res.

    ``mask`` is 0 on sliding-plane halo nodes (the coupler owns them).
    """
    f = mask[0] * coef[0] / vol[0]
    for i in range(5):
        q[i] = q0[i] - f * res[i]


def dual_source(q, qn, qnm1, res, vol, w):
    """BDF physical-time derivative added to the pseudo-time residual.

    ``w = [a, b, c]`` are the BDF weights divided by the physical dt:
    BDF1 -> [1, -1, 0]/dt on the first step, BDF2 -> [1.5, -2, 0.5]/dt.
    """
    for i in range(5):
        res[i] += vol[0] * (w[0] * q[i] + w[1] * qn[i] + w[2] * qnm1[i])


def shift_history(q, qn, qnm1):
    """Advance the physical-time history: qnm1 <- qn <- q."""
    for i in range(5):
        qnm1[i] = qn[i]
        qn[i] = q[i]


def smooth_gather(rs1, rs2, acc1, acc2):
    """Gather neighbouring smoothed residuals (one Jacobi half-step)."""
    for i in range(5):
        acc1[i] += rs2[i]
        acc2[i] += rs1[i]


def smooth_update(res, acc, deg, prm, rs):
    """Jacobi update of implicit residual smoothing.

    Solves (I - eps*Lap) rs = res approximately:
    rs <- (res + eps * sum_nbr rs_nbr) / (1 + eps * degree).
    ``prm[0]`` is eps.
    """
    f = 1.0 / (1.0 + prm[0] * deg[0])
    for i in range(5):
        rs[i] = (res[i] + prm[0] * acc[i]) * f
        acc[i] = 0.0


# -- monitors ----------------------------------------------------------------

def residual_norm(res, mask, vol, norm):
    """Volume-weighted L2 residual accumulation (core nodes only)."""
    f = mask[0] / vol[0]
    for i in range(5):
        norm[0] += f * res[i] * res[i]


def total_pressure_sum(q, mask, gam, acc):
    """Accumulate isentropic stagnation pressure over core nodes.

    ``acc = [sum p0, count]`` — the mean stagnation pressure is the
    compressor's work-input measure (its rise across the machine is
    the real performance figure, robust to static-pressure recovery).
    """
    rho = q[0]
    inv = 1.0 / rho
    u = q[1] * inv
    v = q[2] * inv
    s = q[3] * inv
    ke = 0.5 * (u * u + v * v + s * s)
    p = (gam[0] - 1.0) * (q[4] - rho * ke)
    c2 = gam[0] * p * inv
    m2 = (u * u + v * v + s * s) / c2
    p0 = p * pow(1.0 + 0.5 * (gam[0] - 1.0) * m2,
                 gam[0] / (gam[0] - 1.0))  # noqa: F821
    acc[0] += mask[0] * p0
    acc[1] += mask[0]


def face_mass_flow(q, a, mdot):
    """Mass flow through an x-normal boundary face: rho*ux*A."""
    mdot[0] += q[1] * a[0]


# -- pre-built Kernel objects (shared, codegen cache lives on them) -------
KERNELS = {
    "zero_res": Kernel(zero_res),
    "flux_edge": Kernel(flux_edge),
    "wall_flux": Kernel(wall_flux),
    "inlet_flux": Kernel(inlet_flux),
    "outlet_flux": Kernel(outlet_flux),
    "blade_force": Kernel(blade_force),
    "local_dt": Kernel(local_dt),
    "save_state": Kernel(save_state),
    "rk_stage": Kernel(rk_stage),
    "dual_source": Kernel(dual_source),
    "shift_history": Kernel(shift_history),
    "smooth_gather": Kernel(smooth_gather),
    "smooth_update": Kernel(smooth_update),
    "residual_norm": Kernel(residual_norm),
    "total_pressure_sum": Kernel(total_pressure_sum),
    "face_mass_flow": Kernel(face_mass_flow),
}
