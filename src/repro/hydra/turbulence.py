"""Spalart-Allmaras-style turbulence working variable.

Hydra runs the one-equation Spalart-Allmaras model [paper §IV-A2]. We
transport the SA working variable nu_t with the same edge-based OP2
motif as the mean flow: first-order upwind convection along edges, a
gradient diffusion term, and the SA-shaped source (production
proportional to a shear estimate, wall destruction ~ (nu/d)^2 with d
the wall distance).

Substitution note (recorded in DESIGN.md): the mean flow here is
inviscid (Rusanov Euler), so nu_t is transported *passively* — it
exercises the complete second-equation code path (extra dat, extra
kernels, extra halo exchanges, its own reductions) without feeding an
eddy viscosity back. The paper's performance story depends on the code
path, not on the RANS closure fidelity.
"""

from __future__ import annotations

import numpy as np

from repro import op2
from repro.op2 import Kernel

#: SA-like model constants (cb1, cw1 analogues and diffusion sigma).
#: NOTE: kernels are written in the restricted OP2 language, which has
#: no free variables — the constants appear as literals in the kernel
#: bodies below and are mirrored here for tests and documentation.
CB1 = 0.1355
CW1 = 3.24
SIGMA_INV = 1.5


def nut_zero_res(r):
    r[0] = 0.0


def nut_flux_edge(q1, q2, n1, n2, w, r1, r2):
    """Upwind convective + gradient diffusion flux for nu_t along an edge."""
    u1 = q1[1] / q1[0]
    v1 = q1[2] / q1[0]
    s1 = q1[3] / q1[0]
    u2 = q2[1] / q2[0]
    v2 = q2[2] / q2[0]
    s2 = q2[3] / q2[0]
    vn1 = u1 * w[0] + v1 * w[1] + s1 * w[2]
    vn2 = u2 * w[0] + v2 * w[1] + s2 * w[2]
    vn = 0.5 * (vn1 + vn2)
    area = sqrt(w[0] * w[0] + w[1] * w[1] + w[2] * w[2])  # noqa: F821
    # upwind convection + symmetric dissipation
    f = 0.5 * vn * (n1[0] + n2[0]) - 0.5 * fabs(vn) * (n2[0] - n1[0])  # noqa: F821
    # gradient diffusion (edge-difference approximation)
    nu_face = 0.5 * (n1[0] + n2[0])
    f = f - 1.5 * nu_face * area * (n2[0] - n1[0])
    r1[0] += f
    r2[0] -= f


def nut_source(q, nut, xyz, vol, r, prm):
    """SA-shaped source: production - wall destruction.

    ``prm = [r_inner, r_outer]`` gives the wall distance
    d = min(z - r_in, r_out - z); shear is estimated as |u|/d.
    """
    d_lo = xyz[2] - prm[0]
    d_hi = prm[1] - xyz[2]
    d = d_lo if d_lo < d_hi else d_hi
    d = d if d > 1e-6 else 1e-6
    rho = q[0]
    speed = sqrt((q[1] * q[1] + q[2] * q[2] + q[3] * q[3])) / rho  # noqa: F821
    shear = speed / d
    production = 0.1355 * shear * nut[0]
    destruction = 3.24 * (nut[0] / d) * (nut[0] / d)
    r[0] -= vol[0] * (production - destruction)


def nut_update(nutr, vol, mask, nut, coef):
    """Explicit update with positivity clipping (nu_t >= 0)."""
    value = nut[0] - mask[0] * coef[0] / vol[0] * nutr[0]
    nut[0] = value if value > 0.0 else 0.0


def nut_norm(nut, norm):
    norm[0] += nut[0] * nut[0]


KERNELS = {
    "nut_zero_res": Kernel(nut_zero_res),
    "nut_flux_edge": Kernel(nut_flux_edge),
    "nut_source": Kernel(nut_source),
    "nut_update": Kernel(nut_update),
    "nut_norm": Kernel(nut_norm),
}


class TurbulenceModel:
    """SA-like working-variable transport bolted onto a HydraSolver.

    Creates its own ``nut`` and ``nut_res`` dats on the solver's node
    set and advances once per physical step (loose coupling).
    """

    def __init__(self, solver, nut_inf: float = 1e-3) -> None:
        self.solver = solver
        nodes = solver.nodes
        self.nut = op2.Dat(nodes, 1,
                           data=np.full((nodes.total_size, 1), nut_inf),
                           name="nut")
        self.nut_res = op2.Dat(nodes, 1, name="nut_res")
        cfg = solver.config
        self.g_prm = op2.Global(2, [cfg.r_inner, cfg.r_outer], "sa_prm")
        self.g_coef = op2.Global(1, 0.0, "sa_coef")

    def advance(self) -> None:
        """One explicit transport step (call after each physical step)."""
        solver = self.solver
        lp = solver.local
        b = solver.num.backend
        pedge = lp.maps["pedge"]
        op2.par_loop(KERNELS["nut_zero_res"], solver.nodes,
                     self.nut_res.arg(op2.WRITE), backend=b)
        op2.par_loop(KERNELS["nut_flux_edge"], solver.edges,
                     solver.q.arg(op2.READ, pedge, 0),
                     solver.q.arg(op2.READ, pedge, 1),
                     self.nut.arg(op2.READ, pedge, 0),
                     self.nut.arg(op2.READ, pedge, 1),
                     lp.dats["edgew"].arg(op2.READ),
                     self.nut_res.arg(op2.INC, pedge, 0),
                     self.nut_res.arg(op2.INC, pedge, 1), backend=b)
        op2.par_loop(KERNELS["nut_source"], solver.nodes,
                     solver.q.arg(op2.READ), self.nut.arg(op2.READ),
                     lp.dats["xyz"].arg(op2.READ),
                     lp.dats["vol"].arg(op2.READ),
                     self.nut_res.arg(op2.INC),
                     self.g_prm.arg(op2.READ), backend=b)
        self.g_coef.value = solver.dt_outer
        op2.par_loop(KERNELS["nut_update"], solver.nodes,
                     self.nut_res.arg(op2.READ),
                     lp.dats["vol"].arg(op2.READ),
                     lp.dats["mask"].arg(op2.READ),
                     self.nut.arg(op2.RW), self.g_coef.arg(op2.READ),
                     backend=b)

    def norm(self) -> float:
        """Collective L2 norm of nu_t (distributed-safe)."""
        norm = op2.Global(1, 0.0, "nut_l2")
        op2.par_loop(KERNELS["nut_norm"], self.solver.nodes,
                     self.nut.arg(op2.READ), norm.arg(op2.INC),
                     backend=self.solver.num.backend)
        return float(np.sqrt(norm.value))
