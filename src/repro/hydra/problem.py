"""Row mesh → OP2 problem description.

Builds the :class:`~repro.op2.distribute.GlobalProblem` (plain arrays)
for one blade row, so the identical description can be materialized
serially or distributed over a Hydra Session's ranks.
"""

from __future__ import annotations

import numpy as np

from repro.hydra.gas import FlowState, conserved
from repro.mesh.annulus import RowMesh
from repro.op2.distribute import GlobalProblem


def row_problem(mesh: RowMesh, initial: FlowState) -> GlobalProblem:
    """Assemble sets/maps/dats for one row, initialized to ``initial``.

    ``initial`` must already be expressed in this row's frame of
    reference (use :meth:`FlowState.shifted_frame` for rotors).

    Sets: ``nodes``, ``edges``, plus ``inlet``/``outlet`` boundary-face
    sets when the corresponding end is a true boundary (not a sliding
    plane), and ``wall`` faces for hub and casing. Boundary-face sets
    of size zero are omitted (OP2 loops over empty sets are legal but
    the maps cannot be built from nothing).
    """
    gp = GlobalProblem()
    n = mesh.n_nodes
    gp.add_set("nodes", n)
    gp.add_set("edges", mesh.n_edges)
    gp.add_map("pedge", "edges", "nodes", mesh.edges)

    q0 = np.tile(initial.conserved(), (n, 1))
    gp.add_dat("q", "nodes", q0)
    gp.add_dat("qk", "nodes", q0.copy())     # RK stage base
    gp.add_dat("qn", "nodes", q0.copy())     # physical history n
    gp.add_dat("qnm1", "nodes", q0.copy())   # physical history n-1
    gp.add_dat("res", "nodes", np.zeros((n, 5)))
    gp.add_dat("xyz", "nodes", mesh.coords)
    gp.add_dat("vol", "nodes", mesh.node_vol)
    gp.add_dat("mask", "nodes", mesh.node_mask)
    gp.add_dat("edgew", "edges", mesh.edge_w)
    degree = np.zeros(n)
    np.add.at(degree, mesh.edges[:, 0], 1.0)
    np.add.at(degree, mesh.edges[:, 1], 1.0)
    gp.add_dat("deg", "nodes", degree)  # for implicit residual smoothing

    if mesh.inlet_nodes.size:
        gp.add_set("inlet", mesh.inlet_nodes.size)
        gp.add_map("pinlet", "inlet", "nodes",
                   mesh.inlet_nodes.reshape(-1, 1))
        gp.add_dat("inlet_area", "inlet", mesh.inlet_area)
    if mesh.outlet_nodes.size:
        gp.add_set("outlet", mesh.outlet_nodes.size)
        gp.add_map("poutlet", "outlet", "nodes",
                   mesh.outlet_nodes.reshape(-1, 1))
        gp.add_dat("outlet_area", "outlet", mesh.outlet_area)

    gp.add_set("wall", mesh.wall_nodes.size)
    gp.add_map("pwall", "wall", "nodes", mesh.wall_nodes.reshape(-1, 1))
    gp.add_dat("wall_nz", "wall", mesh.wall_normal_z)
    return gp


def row_owners(mesh: RowMesh, gp: GlobalProblem, nranks: int,
               scheme: str = "rcb") -> dict[str, np.ndarray]:
    """Owner arrays for every set of a row problem.

    Nodes are partitioned by ``scheme`` (``"rcb"``, ``"graph"`` or
    ``"strips"``); derived sets inherit the owner of their first node.
    """
    from repro.mesh.partition import (partition_graph_greedy, partition_rcb,
                                      partition_slabs, partition_strips)
    from repro.op2.distribute import derive_owner_from_map

    if scheme == "rcb":
        node_owner = partition_rcb(mesh.coords, nranks)
    elif scheme == "graph":
        node_owner = partition_graph_greedy(mesh.edges, mesh.n_nodes, nranks)
    elif scheme == "strips":
        node_owner = partition_strips(mesh.n_nodes, nranks)
    elif scheme == "slabs":
        node_owner = partition_slabs(mesh.coords, nranks)
    else:
        raise ValueError(f"unknown partition scheme {scheme!r}")

    owners = {"nodes": node_owner}
    for mname, (from_s, _to_s, values) in gp.maps.items():
        owners[from_s] = derive_owner_from_map(values, node_owner)
    return owners
