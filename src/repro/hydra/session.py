"""Hydra Sessions: one blade row's solver plus its sliding-plane adapters.

A Hydra Session (HS) is the unit the JM76-style coupler talks to: it
exposes, per interface side, the *donor* station values the neighbour's
halo layer needs, and accepts interpolated values for its own halo
layer. In distributed runs each rank of the session serves only the
interface nodes it owns; the coupler's routing tables (built once at
setup) know who owns what.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hydra.solver import HydraSolver
from repro.mesh.annulus import RowMesh
from repro.op2.distribute import RankLayout
from repro.telemetry.recorder import active_recorder


@dataclass
class InterfaceSideInfo:
    """Static description of one sliding-plane side of a session.

    ``grid_shape`` is (nr, nt); flat positions index the grid row-major
    (iz * nt + it). ``y`` / ``z`` give each grid point's coordinates.
    """

    side: str                     #: "in" or "out"
    grid_shape: tuple[int, int]
    y: np.ndarray                 #: (nr*nt,) circumferential positions
    z: np.ndarray                 #: (nr*nt,) radial positions
    circumference: float
    frame_velocity: float         #: this row's frame speed (omega * r_mid)
    #: flat grid positions this rank owns, for donor reads / halo writes
    owned_donor_pos: np.ndarray
    owned_halo_pos: np.ndarray
    #: matching local node ids
    _donor_local: np.ndarray
    _halo_local: np.ndarray


class HydraSession:
    """One row's solver with sliding-plane data adapters."""

    def __init__(self, solver: HydraSolver, mesh: RowMesh,
                 layout: RankLayout | None = None) -> None:
        self.solver = solver
        self.mesh = mesh
        self.layout = layout
        self.sides: dict[str, InterfaceSideInfo] = {}
        cfg = mesh.config
        if cfg.halo_in:
            self.sides["in"] = self._build_side(
                "in", mesh.iface_in_donor, mesh.iface_in_halo)
        if cfg.halo_out:
            self.sides["out"] = self._build_side(
                "out", mesh.iface_out_donor, mesh.iface_out_halo)

    # -- construction ----------------------------------------------------
    def _global_to_local(self, gids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(flat positions owned here, local node indices) for grid ids."""
        if self.layout is None:
            return np.arange(gids.size), gids.ravel()
        owned = self.layout.set_layouts["nodes"].owned
        if owned.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        flat = gids.ravel()
        idx = np.searchsorted(owned, flat)
        idx = np.minimum(idx, len(owned) - 1)
        mine = owned[idx] == flat
        return np.nonzero(mine)[0], idx[mine]

    def _build_side(self, side: str, donor_grid: np.ndarray,
                    halo_grid: np.ndarray) -> InterfaceSideInfo:
        cfg = self.mesh.config
        coords = self.mesh.coords
        flat = donor_grid.ravel()
        y = coords[flat, 1]
        z = coords[flat, 2]
        donor_pos, donor_local = self._global_to_local(donor_grid)
        halo_pos, halo_local = self._global_to_local(halo_grid)
        return InterfaceSideInfo(
            side=side, grid_shape=donor_grid.shape, y=y, z=z,
            circumference=cfg.circumference,
            frame_velocity=cfg.wheel_speed,
            owned_donor_pos=donor_pos, owned_halo_pos=halo_pos,
            _donor_local=donor_local, _halo_local=halo_local,
        )

    # -- coupler data plane ------------------------------------------------
    def donor_values(self, side: str) -> tuple[np.ndarray, np.ndarray]:
        """(flat positions, conserved values) of owned donor-grid nodes."""
        info = self.sides[side]
        values = self.solver.q.data_with_halos[info._donor_local].copy()
        rec = active_recorder()
        if rec is not None:
            rec.counter("coupler.donor_values_served", len(values))
        return info.owned_donor_pos, values

    def apply_halo_values(self, side: str, positions: np.ndarray,
                          values: np.ndarray) -> None:
        """Write interpolated conserved values into owned halo nodes.

        ``positions`` are flat grid positions; they must be a subset of
        ``owned_halo_pos``. Call :meth:`finish_coupling` afterwards on
        **every** rank of the session (collectively) so halo-staleness
        flags stay consistent.
        """
        info = self.sides[side]
        owned = info.owned_halo_pos  # ascending (np.nonzero order)
        positions = np.asarray(positions, dtype=np.int64)
        rows = np.searchsorted(owned, positions)
        bad = (rows >= owned.size) | (owned[np.minimum(rows, owned.size - 1)]
                                      != positions)
        if bad.any():
            raise ValueError(
                f"position {int(positions[np.nonzero(bad)[0][0]])} is not "
                f"an owned halo node of side {side!r}"
            )
        self.solver.q.data_with_halos[info._halo_local[rows]] = values
        rec = active_recorder()
        if rec is not None:
            rec.counter("coupler.halo_values_applied", len(positions))

    def finish_coupling(self) -> None:
        """Collectively mark the state stale after halo injection."""
        self.solver.q.mark_halo_stale()

    # -- static routing info for the coupler setup --------------------------
    def side_geometry(self, side: str) -> InterfaceSideInfo:
        return self.sides[side]
