"""Run monitors: convergence histories and conservation checks.

Production CFD runs live and die by their monitors; mini-Hydra
provides the same ones the paper's workflow implies: per-step residual
norms, inner-iteration convergence within a physical step (the dual
time-stepping quality measure), and mass-flow balance through the
domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hydra.solver import HydraSolver


@dataclass
class ConvergenceReport:
    """Summary of a monitored run."""

    steps: int
    residuals: list[float]
    inner_drops: list[float]      #: residual reduction within each step
    mass_balance: list[float]     #: (inflow - outflow) / inflow per step

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")

    def converged(self, tol: float) -> bool:
        return bool(self.residuals) and self.residuals[-1] < tol

    def mean_inner_drop(self) -> float:
        """Mean factor the inner iterations reduce the residual by."""
        return float(np.mean(self.inner_drops)) if self.inner_drops else 1.0


class RunMonitor:
    """Wraps a solver to record convergence behaviour while stepping."""

    def __init__(self, solver: HydraSolver) -> None:
        self.solver = solver
        self.residuals: list[float] = []
        self.inner_drops: list[float] = []
        self.mass_balance: list[float] = []

    def step(self) -> None:
        """One physical step with before/after residual bookkeeping."""
        solver = self.solver
        r_before = solver.residual_norm()
        solver.advance_physical()
        r_after = solver.residual_norm()
        self.residuals.append(r_after)
        self.inner_drops.append(r_after / max(r_before, 1e-300))
        if solver.has_inlet and solver.has_outlet:
            m_in = solver.mass_flow("inlet")
            m_out = solver.mass_flow("outlet")
            self.mass_balance.append((m_in - m_out) / max(abs(m_in), 1e-300))
        else:
            self.mass_balance.append(float("nan"))

    def run(self, nsteps: int) -> ConvergenceReport:
        for _ in range(nsteps):
            self.step()
        return self.report()

    def report(self) -> ConvergenceReport:
        return ConvergenceReport(
            steps=len(self.residuals),
            residuals=list(self.residuals),
            inner_drops=list(self.inner_drops),
            mass_balance=list(self.mass_balance),
        )
