"""Gas model: perfect gas relations and state conversions.

The solver is nondimensionalized with reference density and pressure
of 1, so the reference speed of sound is ``sqrt(GAMMA)``. Conserved
state vectors are ``[rho, rho*ux, rho*uy, rho*uz, E]`` with ``E`` the
total energy per unit volume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: ratio of specific heats for air
GAMMA = 1.4


@dataclass(frozen=True)
class FlowState:
    """A uniform primitive state (used for initial and inlet conditions)."""

    rho: float = 1.0
    ux: float = 0.0
    uy: float = 0.0
    uz: float = 0.0
    p: float = 1.0

    @property
    def sound_speed(self) -> float:
        return float(np.sqrt(GAMMA * self.p / self.rho))

    @property
    def mach(self) -> float:
        speed = float(np.sqrt(self.ux**2 + self.uy**2 + self.uz**2))
        return speed / self.sound_speed

    def conserved(self) -> np.ndarray:
        """The (5,) conserved vector of this state."""
        e = self.p / (GAMMA - 1.0) + 0.5 * self.rho * (
            self.ux**2 + self.uy**2 + self.uz**2
        )
        return np.array([self.rho, self.rho * self.ux, self.rho * self.uy,
                         self.rho * self.uz, e])

    def shifted_frame(self, du_y: float) -> "FlowState":
        """The same physical state viewed from a frame moving at ``du_y``
        in +y (velocity transforms, thermodynamics unchanged)."""
        return FlowState(rho=self.rho, ux=self.ux, uy=self.uy - du_y,
                         uz=self.uz, p=self.p)


def conserved(rho, ux, uy, uz, p) -> np.ndarray:
    """Vectorized primitive -> conserved (arrays broadcast; last axis 5)."""
    rho, ux, uy, uz, p = np.broadcast_arrays(rho, ux, uy, uz, p)
    e = p / (GAMMA - 1.0) + 0.5 * rho * (ux**2 + uy**2 + uz**2)
    return np.stack([rho, rho * ux, rho * uy, rho * uz, e], axis=-1)


def primitives(q: np.ndarray) -> dict[str, np.ndarray]:
    """Conserved (..., 5) -> dict of primitive arrays (rho, ux, uy, uz, p,
    c, mach)."""
    q = np.asarray(q)
    rho = q[..., 0]
    ux = q[..., 1] / rho
    uy = q[..., 2] / rho
    uz = q[..., 3] / rho
    ke = 0.5 * rho * (ux**2 + uy**2 + uz**2)
    p = (GAMMA - 1.0) * (q[..., 4] - ke)
    c = np.sqrt(GAMMA * p / rho)
    mach = np.sqrt(ux**2 + uy**2 + uz**2) / c
    return {"rho": rho, "ux": ux, "uy": uy, "uz": uz, "p": p, "c": c,
            "mach": mach}


def total_pressure(q: np.ndarray) -> np.ndarray:
    """Isentropic stagnation pressure of conserved states (..., 5)."""
    prim = primitives(q)
    return prim["p"] * (1.0 + 0.5 * (GAMMA - 1.0) * prim["mach"] ** 2) ** (
        GAMMA / (GAMMA - 1.0)
    )


def shift_frame(q: np.ndarray, du_y: float) -> np.ndarray:
    """Transform conserved states (..., 5) to a frame moving at ``du_y``
    in +y: momentum and energy change exactly, thermodynamics don't."""
    q = np.asarray(q, dtype=np.float64).copy()
    rho = q[..., 0]
    my = q[..., 2]
    # E' = E - my*du + 0.5*rho*du^2  (u_y' = u_y - du)
    q[..., 4] = q[..., 4] - my * du_y + 0.5 * rho * du_y**2
    q[..., 2] = my - rho * du_y
    return q
