"""The mini-Hydra solver: residual assembly and dual time stepping.

One :class:`HydraSolver` advances one blade row (one Hydra Session's
flow domain). All computation goes through OP2 par_loops, so the same
solver runs serially or distributed, under any compute backend, purely
by how its :class:`~repro.op2.distribute.LocalProblem` was built and
what the OP2 config says.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import op2
from repro.hydra.gas import GAMMA, FlowState, primitives
from repro.hydra.kernels import KERNELS
from repro.mesh.config import RowConfig
from repro.op2.distribute import LocalProblem
from repro.telemetry.recorder import active_recorder, span as _tspan
from repro.util.atomicio import atomic_savez
from repro.util.timing import TimerRegistry


class SolverDivergence(RuntimeError):
    """The solution state went unphysical (NaN/Inf or runaway growth).

    Raised by the in-run health guard (``Numerics.guard=True``) at a
    physical-step boundary *before* garbage can propagate across
    sliding planes into neighbouring rows. Carries the ``step`` the
    check fired at and a ``reason`` string; the resilience supervisor
    treats it as a recoverable fault (rollback to checkpoint with CFL
    reduction).
    """

    def __init__(self, message: str, step: int | None = None,
                 reason: str = "") -> None:
        super().__init__(message)
        self.step = step
        self.reason = reason


@dataclass
class Numerics:
    """Numerical parameters of the dual time-stepping scheme."""

    gamma: float = GAMMA
    cfl: float = 0.7
    #: inner (pseudo-time) iterations per physical step
    inner_iters: int = 8
    #: low-storage Runge-Kutta stage coefficients
    rk_coeffs: tuple[float, ...] = (0.25, 1.0 / 3.0, 0.5, 1.0)
    #: implicit residual smoothing: eps > 0 enables it (Hydra's classic
    #: convergence accelerator — raises the stable CFL roughly by
    #: sqrt(1 + 4*eps)); Jacobi iterations per application
    smooth_eps: float = 0.0
    smooth_iters: int = 2
    #: compute backend override (None = thread config default)
    backend: str | None = None
    #: in-run health guard: check the state for NaN/Inf and runaway
    #: magnitude after every physical step, raising
    #: :class:`SolverDivergence` instead of propagating garbage
    guard: bool = False
    #: |q| beyond this is declared divergent (guard only)
    divergence_limit: float = 1e6

    def __post_init__(self) -> None:
        if self.cfl <= 0:
            raise ValueError(f"cfl must be > 0, got {self.cfl}")
        if self.inner_iters < 1:
            raise ValueError(f"inner_iters must be >= 1, got {self.inner_iters}")
        if self.divergence_limit <= 0:
            raise ValueError(
                f"divergence_limit must be > 0, got {self.divergence_limit}")


class HydraSolver:
    """Dual time-stepping URANS-style solver for one blade row."""

    def __init__(self, local: LocalProblem, config: RowConfig,
                 numerics: Numerics | None = None,
                 dt_outer: float = 1e-3,
                 inlet: FlowState | None = None,
                 p_out: float | None = None) -> None:
        self.local = local
        self.config = config
        self.num = numerics or Numerics()
        self.dt_outer = float(dt_outer)
        self.time = 0.0
        self.step = 0
        # phase timers double as telemetry span sources (see util.timing)
        self.timers = TimerRegistry(categories={
            "coupler_wait": "coupler.wait",
            "physical_step": "hydra.step",
            "checkpoint_write": "resilience.checkpoint_write",
        })

        s = local.sets
        d = local.dats
        self.nodes = s["nodes"]
        self.edges = s["edges"]
        self.q = d["q"]
        self.qk = d["qk"]
        self.qn = d["qn"]
        self.qnm1 = d["qnm1"]
        self.res = d["res"]
        self.has_inlet = "inlet" in s
        self.has_outlet = "outlet" in s
        if self.has_inlet and inlet is None:
            raise ValueError(
                f"row {config.name!r} has an inlet boundary; supply `inlet`"
            )
        if self.has_outlet and p_out is None:
            raise ValueError(
                f"row {config.name!r} has an outlet boundary; supply `p_out`"
            )

        # runtime constants as Globals (OP2 READ args)
        self.g_gam = op2.Global(1, self.num.gamma, "gam")
        self.g_cfl = op2.Global(1, self.num.cfl, "cfl")
        self.g_coef = op2.Global(1, 0.0, "coef")
        self.g_wdual = op2.Global(3, [0.0, 0.0, 0.0], "wdual")
        if inlet is not None:
            self.g_qin = op2.Global(
                4, [inlet.rho, inlet.ux, inlet.uy, inlet.uz], "qin"
            )
        else:
            self.g_qin = None
        self.g_pout = op2.Global(1, p_out if p_out is not None else 1.0, "pout")
        self.g_hmin = op2.Global(1, config.min_spacing, "hmin")

        # blade-force parameters: [rate, v_target, wake_amp, k_wave, f_axial]
        k_wave = config.blade_count / config.r_mid
        f_axial = config.work_coeff * self.num.gamma / (config.x1 - config.x0)
        rate = config.force_rate if (config.turning_velocity != 0.0
                                     or f_axial != 0.0) else 0.0
        self.g_blade = op2.Global(
            5, [rate, config.turning_velocity, config.wake_amplitude,
                k_wave, f_axial], "bladeprm"
        )
        self.blades_active = rate != 0.0 or f_axial != 0.0
        self._pseudo_dt: float | None = None
        self._steady = False
        if self.num.smooth_eps > 0.0:
            self.g_smooth = op2.Global(1, self.num.smooth_eps, "smooth_eps")
            self._res_s = op2.Dat(self.nodes, 5, name="res_s")
            self._smooth_acc = op2.Dat(self.nodes, 5, name="smooth_acc")
        else:
            self.g_smooth = None

    # -- residual -------------------------------------------------------
    def spatial_residual(self) -> None:
        """Assemble the spatial residual: fluxes, walls, BCs, blade force."""
        b = self.num.backend
        lp = self.local
        op2.par_loop(KERNELS["zero_res"], self.nodes,
                     self.res.arg(op2.WRITE), backend=b)
        pedge = lp.maps["pedge"]
        op2.par_loop(KERNELS["flux_edge"], self.edges,
                     self.q.arg(op2.READ, pedge, 0),
                     self.q.arg(op2.READ, pedge, 1),
                     lp.dats["edgew"].arg(op2.READ),
                     self.res.arg(op2.INC, pedge, 0),
                     self.res.arg(op2.INC, pedge, 1),
                     self.g_gam.arg(op2.READ), backend=b)
        op2.par_loop(KERNELS["wall_flux"], lp.sets["wall"],
                     self.q.arg(op2.READ, lp.maps["pwall"], 0),
                     lp.dats["wall_nz"].arg(op2.READ),
                     self.res.arg(op2.INC, lp.maps["pwall"], 0),
                     self.g_gam.arg(op2.READ), backend=b)
        if self.has_inlet:
            op2.par_loop(KERNELS["inlet_flux"], lp.sets["inlet"],
                         self.q.arg(op2.READ, lp.maps["pinlet"], 0),
                         lp.dats["inlet_area"].arg(op2.READ),
                         self.res.arg(op2.INC, lp.maps["pinlet"], 0),
                         self.g_gam.arg(op2.READ), self.g_qin.arg(op2.READ),
                         backend=b)
        if self.has_outlet:
            op2.par_loop(KERNELS["outlet_flux"], lp.sets["outlet"],
                         self.q.arg(op2.READ, lp.maps["poutlet"], 0),
                         lp.dats["outlet_area"].arg(op2.READ),
                         self.res.arg(op2.INC, lp.maps["poutlet"], 0),
                         self.g_gam.arg(op2.READ), self.g_pout.arg(op2.READ),
                         backend=b)
        if self.blades_active:
            op2.par_loop(KERNELS["blade_force"], self.nodes,
                         self.q.arg(op2.READ),
                         lp.dats["xyz"].arg(op2.READ),
                         lp.dats["vol"].arg(op2.READ),
                         self.res.arg(op2.INC),
                         self.g_blade.arg(op2.READ), backend=b)

    # -- time stepping -----------------------------------------------------
    def pseudo_dt(self) -> float:
        """Global minimum stable pseudo-time step (collective).

        Capped at half the physical step (the BDF dual source adds a
        stiff ~1.5/dt term to the pseudo-time operator) and at the
        blade-force relaxation scale 1/rate — either cap, if violated,
        would push the explicit RK outside its stability region.
        """
        dtmin = op2.Global(1, np.inf, "dtmin")
        op2.par_loop(KERNELS["local_dt"], self.nodes,
                     self.q.arg(op2.READ),
                     self.g_hmin.arg(op2.READ),
                     self.g_gam.arg(op2.READ), self.g_cfl.arg(op2.READ),
                     dtmin.arg(op2.MIN), backend=self.num.backend)
        dtau = dtmin.value
        if not self._steady:
            dtau = min(dtau, 0.5 * self.dt_outer)
        rate = float(self.g_blade.data[0])
        if rate > 0.0:
            dtau = min(dtau, 1.0 / rate)
        return dtau

    def _dual_weights(self) -> None:
        """Set the BDF weights (BDF1 on the very first physical step)."""
        idt = 1.0 / self.dt_outer
        if self.step == 0:
            self.g_wdual.data[:] = np.array([1.0, -1.0, 0.0]) * idt
        else:
            self.g_wdual.data[:] = np.array([1.5, -2.0, 0.5]) * idt

    def inner_iteration(self) -> None:
        """One pseudo-time RK cycle towards the implicit physical step.

        The whole cycle is declared as one loop chain: under
        ``Config.lazy`` (``enabled=None`` keeps eager mode untouched
        otherwise) the chain analyzer elides the per-map re-exchanges
        of ``q`` across the residual loops, batches what remains, and
        fuses adjacent node loops — bitwise-identically to eager.
        """
        with _tspan("inner_iteration", "hydra.inner", step=self.step):
            with op2.loop_chain("hydra.inner", enabled=None):
                self._inner_iteration()

    def _inner_iteration(self) -> None:
        b = self.num.backend
        lp = self.local
        op2.par_loop(KERNELS["save_state"], self.nodes,
                     self.q.arg(op2.READ), self.qk.arg(op2.WRITE), backend=b)
        if self._pseudo_dt is None:
            self._pseudo_dt = self.pseudo_dt()
        for alpha in self.num.rk_coeffs:
            self.spatial_residual()
            op2.par_loop(KERNELS["dual_source"], self.nodes,
                         self.q.arg(op2.READ), self.qn.arg(op2.READ),
                         self.qnm1.arg(op2.READ), self.res.arg(op2.INC),
                         lp.dats["vol"].arg(op2.READ),
                         self.g_wdual.arg(op2.READ), backend=b)
            if self.g_smooth is not None:
                self._smooth_residual()
            self.g_coef.value = alpha * self._pseudo_dt
            op2.par_loop(KERNELS["rk_stage"], self.nodes,
                         self.qk.arg(op2.READ), self.res.arg(op2.READ),
                         lp.dats["vol"].arg(op2.READ),
                         lp.dats["mask"].arg(op2.READ),
                         self.q.arg(op2.WRITE), self.g_coef.arg(op2.READ),
                         backend=b)

    def _smooth_residual(self) -> None:
        """Implicit residual smoothing by Jacobi iteration (in place)."""
        b = self.num.backend
        lp = self.local
        pedge = lp.maps["pedge"]
        self._res_s.copy_from(self.res)
        self._smooth_acc.zero()
        for _ in range(self.num.smooth_iters):
            op2.par_loop(KERNELS["smooth_gather"], self.edges,
                         self._res_s.arg(op2.READ, pedge, 0),
                         self._res_s.arg(op2.READ, pedge, 1),
                         self._smooth_acc.arg(op2.INC, pedge, 0),
                         self._smooth_acc.arg(op2.INC, pedge, 1), backend=b)
            op2.par_loop(KERNELS["smooth_update"], self.nodes,
                         self.res.arg(op2.READ),
                         self._smooth_acc.arg(op2.RW),
                         lp.dats["deg"].arg(op2.READ),
                         self.g_smooth.arg(op2.READ),
                         self._res_s.arg(op2.WRITE), backend=b)
        self.res.copy_from(self._res_s)

    def advance_physical(self) -> None:
        """One outer (physical) time step: shift history, converge inner."""
        with self.timers["physical_step"]:
            op2.par_loop(KERNELS["shift_history"], self.nodes,
                         self.q.arg(op2.READ), self.qn.arg(op2.RW),
                         self.qnm1.arg(op2.WRITE), backend=self.num.backend)
            self._dual_weights()
            self._pseudo_dt = None
            for _ in range(self.num.inner_iters):
                self.inner_iteration()
            self.step += 1
            self.time += self.dt_outer
        if self.num.guard:
            self.check_health()

    def run(self, nsteps: int) -> None:
        for _ in range(nsteps):
            self.advance_physical()

    # -- health guard ---------------------------------------------------
    def check_health(self) -> None:
        """Raise :class:`SolverDivergence` if the state is unphysical.

        Two checks, both on this rank's owned values: any NaN/Inf
        (e.g. from a corrupted sliding-plane transfer), and any
        component magnitude beyond ``Numerics.divergence_limit``
        (runaway instability). Local by design — the raising rank
        aborts the world through the standard failure path, so no
        collective is needed on the healthy path beyond one scan.
        """
        q = self.q.data_ro
        finite = np.isfinite(q)
        if not finite.all():
            bad = int(q.size - np.count_nonzero(finite))
            rec = active_recorder()
            if rec is not None:
                rec.counter("resilience.health_trips")
            raise SolverDivergence(
                f"row {self.config.name!r}: {bad} non-finite state "
                f"entries after step {self.step}",
                step=self.step, reason="nan")
        peak = float(np.abs(q).max()) if q.size else 0.0
        if peak > self.num.divergence_limit:
            rec = active_recorder()
            if rec is not None:
                rec.counter("resilience.health_trips")
            raise SolverDivergence(
                f"row {self.config.name!r}: |q| reached {peak:.3e} "
                f"(limit {self.num.divergence_limit:.3e}) after step "
                f"{self.step}",
                step=self.step, reason="divergence")

    def run_guarded(self, nsteps: int, checkpoint_path,
                    checkpoint_every: int = 5, max_rollbacks: int = 3,
                    cfl_backoff: float = 0.5) -> int:
        """March ``nsteps`` with rollback-to-checkpoint on divergence.

        Standalone (single-solver) graceful degradation: checkpoints
        every ``checkpoint_every`` steps; when the health guard trips,
        restores the last checkpoint, multiplies CFL by ``cfl_backoff``
        and resumes, up to ``max_rollbacks`` times before re-raising.
        Returns the number of rollbacks performed. The coupled-run
        equivalent is the :mod:`repro.resilience` supervisor.
        """
        guard_prev = self.num.guard
        self.num.guard = True
        rollbacks = 0
        target = self.step + nsteps
        ckpt_file = self.checkpoint(checkpoint_path)
        try:
            while self.step < target:
                try:
                    self.advance_physical()
                except SolverDivergence:
                    if rollbacks >= max_rollbacks:
                        raise
                    rollbacks += 1
                    self.restore(ckpt_file)
                    self.num.cfl *= cfl_backoff
                    self.g_cfl.value = self.num.cfl
                    self._pseudo_dt = None
                    rec = active_recorder()
                    if rec is not None:
                        rec.counter("resilience.rollbacks")
                    continue
                if self.step % checkpoint_every == 0:
                    ckpt_file = self.checkpoint(checkpoint_path)
        finally:
            self.num.guard = guard_prev
        return rollbacks

    def solve_steady(self, iters: int = 100, tol: float = 1e-10,
                     check_every: int = 10) -> list[float]:
        """Steady RANS mode: pseudo-time march the flow to steady state.

        Hydra's other operating mode [paper §III]: the dual-source BDF
        weights are zeroed, so the inner RK iterations march the
        spatial residual itself towards zero. Returns the residual-norm
        history (one entry per ``check_every`` iterations); stops early
        when the norm drops below ``tol`` times its first sample.
        """
        self._steady = True
        self.g_wdual.data[:] = 0.0
        self._pseudo_dt = None
        history: list[float] = []
        try:
            for i in range(iters):
                self.inner_iteration()
                if (i + 1) % check_every == 0:
                    history.append(self.residual_norm())
                    self._pseudo_dt = None  # flow moved; re-evaluate CFL
                    if history[-1] <= tol * max(history[0], 1e-300):
                        break
        finally:
            self._steady = False
        return history

    # -- checkpointing ------------------------------------------------
    def checkpoint(self, path) -> str:
        """Save the full time-stepping state (q, qn, qnm1, clock) to npz.

        Committed atomically (tmp + ``os.replace``): a crash mid-write
        leaves the previous checkpoint intact, never a torn archive.
        Returns the written path (``.npz`` appended if missing) —
        pass that to :meth:`restore`.
        """
        with _tspan("checkpoint", "resilience.checkpoint_write",
                    step=self.step):
            return atomic_savez(
                path, compressed=True,
                q=self.q.data_with_halos, qn=self.qn.data_with_halos,
                qnm1=self.qnm1.data_with_halos,
                clock=np.array([self.time, float(self.step)]),
            )

    def restore(self, path) -> None:
        """Load a checkpoint written by :meth:`checkpoint`."""
        with np.load(path) as archive:
            for name, dat in (("q", self.q), ("qn", self.qn),
                              ("qnm1", self.qnm1)):
                data = archive[name]
                if data.shape != dat.data_with_halos.shape:
                    raise ValueError(
                        f"checkpoint field {name!r} has shape {data.shape}, "
                        f"solver expects {dat.data_with_halos.shape}"
                    )
                dat.data_with_halos[:] = data
                dat.mark_halo_stale()
            self.time = float(archive["clock"][0])
            self.step = int(archive["clock"][1])

    # -- monitors -------------------------------------------------------
    def residual_norm(self) -> float:
        """Volume-weighted L2 norm of the current spatial residual."""
        self.spatial_residual()
        norm = op2.Global(1, 0.0, "resnorm")
        op2.par_loop(KERNELS["residual_norm"], self.nodes,
                     self.res.arg(op2.READ),
                     self.local.dats["mask"].arg(op2.READ),
                     self.local.dats["vol"].arg(op2.READ),
                     norm.arg(op2.INC), backend=self.num.backend)
        return float(np.sqrt(norm.value))

    def mass_flow(self, side: str) -> float:
        """Mass flow through the inlet/outlet BC faces (collective)."""
        if side == "inlet" and self.has_inlet:
            faces, mapname, area = "inlet", "pinlet", "inlet_area"
        elif side == "outlet" and self.has_outlet:
            faces, mapname, area = "outlet", "poutlet", "outlet_area"
        else:
            raise ValueError(
                f"row {self.config.name!r} has no {side} boundary faces"
            )
        lp = self.local
        mdot = op2.Global(1, 0.0, "mdot")
        op2.par_loop(KERNELS["face_mass_flow"], lp.sets[faces],
                     self.q.arg(op2.READ, lp.maps[mapname], 0),
                     lp.dats[area].arg(op2.READ),
                     mdot.arg(op2.INC), backend=self.num.backend)
        return mdot.value

    def mean_total_pressure(self) -> float:
        """Mean isentropic stagnation pressure of core nodes (collective)."""
        acc = op2.Global(2, [0.0, 0.0], "p0acc")
        op2.par_loop(KERNELS["total_pressure_sum"], self.nodes,
                     self.q.arg(op2.READ),
                     self.local.dats["mask"].arg(op2.READ),
                     self.g_gam.arg(op2.READ), acc.arg(op2.INC),
                     backend=self.num.backend)
        return float(acc.data[0] / max(acc.data[1], 1.0))

    def primitives(self) -> dict[str, np.ndarray]:
        """Primitive fields on this rank's owned nodes."""
        return primitives(self.q.data_ro)

    def station_pressure(self) -> tuple[np.ndarray, np.ndarray]:
        """Mean static pressure per axial station of owned core nodes.

        Collective in distributed runs (allreduces the per-station
        sums); returns (x_stations, mean_p).
        """
        xs = self.local.dats["xyz"].data_ro[:, 0]
        mask = self.local.dats["mask"].data_ro[:, 0] > 0
        p = self.primitives()["p"]
        stations = np.round(xs[mask], 9)
        uniq, inv = np.unique(stations, return_inverse=True)
        sums = np.zeros(len(uniq))
        counts = np.zeros(len(uniq))
        np.add.at(sums, inv, p[mask])
        np.add.at(counts, inv, 1.0)
        comm = self.local.comm
        if comm is not None and comm.size > 1:
            pieces = comm.allgather((uniq, sums, counts))
            merged: dict[float, list[float]] = {}
            for u, s_, c_ in pieces:
                for x, sv, cv in zip(u, s_, c_):
                    slot = merged.setdefault(float(x), [0.0, 0.0])
                    slot[0] += sv
                    slot[1] += cv
            xs_out = np.array(sorted(merged))
            means = np.array([merged[float(x)][0] / merged[float(x)][1]
                              for x in xs_out])
            return xs_out, means
        return uniq, sums / np.maximum(counts, 1.0)
