"""Asyncio job scheduler: the service's multiplexing core.

One event loop owns admission, queueing and progress streaming; a
bounded thread pool (``slots`` workers) runs the actual coupled
simulations, each through :func:`~repro.service.executor.execute_job`
(segmented, checkpoint-backed, supervised). The split matters because
a coupled run is seconds of blocking compute — it must never run on
the loop — while everything clients observe (submission, progress
events, results) stays single-threaded and race-free on the loop.

Life of a request::

    submit() ── consider() ──rejected──▶ AdmissionError
        │admitted
        ▼
    PriorityQueue (priority, deadline, arrival)
        │ worker dequeues
        ├─ cancelled/suspended while queued ─▶ finalize fast
        ├─ deadline expired while queued ────▶ FAILED("deadline-expired")
        ▼
    run_in_executor ─▶ execute_job ─▶ segments under run_resilient
        │   progress marshalled onto the loop (call_soon_threadsafe)
        ▼
    JobResult (metrics + digest + timings + recovery telemetry)

Deadline semantics: infeasible deadlines are rejected at admission,
expired-but-queued jobs fail fast without burning a slot, and a job
that is *already running* is never killed — its overrun is reported
in ``timings["deadline_overrun_s"]`` instead, because a nearly done
simulation is worth more delivered late than murdered on time.

Graceful shutdown (:meth:`JobScheduler.shutdown`, also wired to
SIGTERM/SIGINT by :meth:`install_signal_handlers`) suspends running
jobs at their next segment boundary, marks queued jobs suspended
untouched, and leaves every suspended job's newest committed
checkpoint on disk — resubmitting the same ``job_id`` against the
same checkpoint root resumes bitwise-identically.
"""

from __future__ import annotations

import asyncio
import math
import signal
import time
from concurrent.futures import ThreadPoolExecutor

from repro.resilience.supervisor import RecoveryPolicy
from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.api import (
    AdmissionError,
    JobRequest,
    JobResult,
    JobStatus,
    ProgressEvent,
    ServiceError,
    job_metrics,
    result_digest,
)
from repro.service.cost import CostModel
from repro.service.dedup import SetupCache
from repro.service.executor import JobControl, execute_job, job_checkpoint_dir
from repro.telemetry.recorder import RankRecorder

__all__ = ["JobHandle", "JobScheduler"]


class JobHandle:
    """A client's view of one submitted job (loop-thread objects)."""

    def __init__(self, request: JobRequest, job_id: str,
                 decision: AdmissionDecision,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.request = request
        self.job_id = job_id
        self.decision = decision
        self.status = JobStatus.QUEUED
        self.control = JobControl()
        self.submitted_t = time.monotonic()
        self.events: asyncio.Queue = asyncio.Queue()
        self._result: asyncio.Future = loop.create_future()
        self._closed = False

    @property
    def tenant(self) -> str:
        return self.request.tenant

    async def result(self) -> JobResult:
        """Wait for the terminal :class:`JobResult`."""
        return await self._result

    async def stream(self):
        """Async-iterate progress events until the job terminates."""
        while True:
            event = await self.events.get()
            if event is None:
                return
            yield event

    def cancel(self) -> None:
        """Request cancellation (honored at the next segment boundary)."""
        self.control.cancel = True

    def suspend(self) -> None:
        """Request checkpoint-and-suspend (resume via same ``job_id``)."""
        self.control.suspend = True

    # -- scheduler-side plumbing (event-loop thread only) ----------------

    def _emit(self, kind: str, step: int, detail: dict) -> None:
        if self._closed:
            return
        self.events.put_nowait(ProgressEvent(
            job_id=self.job_id, tenant=self.tenant, kind=kind, step=step,
            nsteps=self.request.nsteps,
            t=time.monotonic() - self.submitted_t, detail=detail))

    def _finish(self, result: JobResult) -> None:
        self.status = result.status
        if not self._result.done():
            self._result.set_result(result)
        if not self._closed:
            self._closed = True
            self.events.put_nowait(None)


def _sentinel_priority(i: int) -> tuple:
    """A queue priority that sorts after every real job; ``i`` keeps
    sentinel entries totally ordered so heapq never compares payloads."""
    return (math.inf, math.inf, float(i))


class JobScheduler:
    """Admission-controlled multi-tenant scheduler over worker slots.

    Single-process by design: all tenants share one process-wide plan
    cache, compiled-kernel cache and :class:`SetupCache`, which is
    exactly what makes the second identical case ~free.
    """

    def __init__(self, *, slots: int = 2,
                 checkpoint_root,
                 policy: AdmissionPolicy | None = None,
                 cost: CostModel | None = None,
                 recovery: RecoveryPolicy | None = None,
                 checkpoint_every: int = 2,
                 segment_steps: int | None = None,
                 run_overrides: dict | None = None) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 — suspension "
                             "needs committed checkpoints")
        self.slots = slots
        self.checkpoint_root = checkpoint_root
        self.recovery = recovery or RecoveryPolicy(backoff_base=0.0)
        self.checkpoint_every = checkpoint_every
        self.segment_steps = segment_steps or 2 * checkpoint_every
        #: extra CoupledRunConfig fields applied to every job
        self.run_overrides = dict(run_overrides or {})
        self.recorder = RankRecorder(rank=0)
        self.setup_cache = SetupCache(recorder=self.recorder)
        self.admission = AdmissionController(slots, policy, cost)
        self.jobs: dict[str, JobHandle] = {}
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._workers: list[asyncio.Task] = []
        self._pool: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._seq = 0
        self._accepting = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self._workers:
            raise ServiceError("scheduler already started")
        self._loop = asyncio.get_running_loop()
        self._pool = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-service")
        self._accepting = True
        self._workers = [
            asyncio.create_task(self._worker(), name=f"service-worker-{i}")
            for i in range(self.slots)]

    async def __aenter__(self) -> "JobScheduler":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    def install_signal_handlers(self,
                                signals=(signal.SIGTERM,
                                         signal.SIGINT)) -> None:
        """SIGTERM/SIGINT trigger one graceful checkpoint-and-suspend."""
        loop = self._loop or asyncio.get_running_loop()

        def _handler() -> None:
            if self._accepting:
                asyncio.ensure_future(self.shutdown(), loop=loop)

        for sig in signals:
            loop.add_signal_handler(sig, _handler)

    async def shutdown(self, *, cancel: bool = False) -> None:
        """Stop accepting work and wind down.

        Graceful (default): every non-terminal job is asked to
        suspend — running jobs stop at their next committed segment
        boundary, queued jobs are marked suspended without running.
        With ``cancel=True`` jobs are cancelled instead. Either way
        checkpoints already on disk stay there.
        """
        if not self._workers:
            return
        self._accepting = False
        for handle in self.jobs.values():
            if not handle.status.terminal:
                (handle.cancel if cancel else handle.suspend)()
        for i in range(len(self._workers)):
            self._queue.put_nowait((_sentinel_priority(i), None))
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- submission ------------------------------------------------------

    async def submit(self, request: JobRequest) -> JobHandle:
        """Admit (or reject, raising :class:`AdmissionError`) and queue."""
        if not self._accepting:
            raise ServiceError("scheduler is not accepting jobs "
                               "(not started, or shutting down)")
        request.validate()
        self.recorder.counter("service.jobs.submitted")
        decision = self.admission.consider(request)
        if not decision.admitted:
            self.recorder.counter("service.jobs.rejected")
            self.recorder.counter(f"service.rejects.{decision.reason}")
            raise AdmissionError(decision.reason, decision.detail)
        self._seq += 1
        job_id = request.job_id or f"{request.tenant}-{self._seq:04d}"
        handle = JobHandle(request, job_id, decision, self._loop)
        self.jobs[job_id] = handle
        deadline_key = (request.deadline_s if request.deadline_s is not None
                        else math.inf)
        self._queue.put_nowait(
            ((request.priority, deadline_key, self._seq), handle))
        handle._emit("queued", 0, {
            "estimated_run_s": decision.estimated_run_s,
            "estimated_wait_s": decision.estimated_wait_s})
        return handle

    # -- worker side -----------------------------------------------------

    async def _worker(self) -> None:
        while True:
            _, handle = await self._queue.get()
            if handle is None:
                return
            await self._dispatch(handle)

    async def _dispatch(self, handle: JobHandle) -> None:
        request = handle.request
        queued_s = time.monotonic() - handle.submitted_t
        if handle.control.cancel:
            self._finalize(handle, JobStatus.CANCELLED, queued_s, 0.0)
            return
        if handle.control.suspend:
            self._finalize(handle, JobStatus.SUSPENDED, queued_s, 0.0)
            return
        if (request.deadline_s is not None
                and queued_s > request.deadline_s):
            self._finalize(handle, JobStatus.FAILED, queued_s, 0.0,
                           error=f"deadline-expired: spent {queued_s:.1f}s "
                                 f"queued, deadline was "
                                 f"{request.deadline_s:.1f}s")
            return
        handle.status = JobStatus.RUNNING
        try:
            outcome = await self._loop.run_in_executor(
                self._pool, self._run_in_thread, handle)
        except Exception as exc:  # non-recoverable / budget exhausted
            self._finalize(handle, JobStatus.FAILED, queued_s, 0.0,
                           error=f"{type(exc).__name__}: {exc}")
            return
        status = {"completed": JobStatus.COMPLETED,
                  "suspended": JobStatus.SUSPENDED,
                  "cancelled": JobStatus.CANCELLED}[outcome.kind]
        self._finalize(handle, status, queued_s, outcome.run_seconds,
                       outcome=outcome)

    def _run_in_thread(self, handle: JobHandle):
        """Blocking job body — worker thread, not the event loop."""
        request = handle.request
        overrides = dict(self.run_overrides)
        if request.transport is not None:
            # per-job transport beats the service-wide default; digests
            # are transport-invariant so tenants may mix freely
            overrides["transport"] = request.transport
        cfg = request.case.run_config(
            checkpoint_every=self.checkpoint_every,
            checkpoint_dir=job_checkpoint_dir(
                self.checkpoint_root, request.tenant, handle.job_id),
            fault_plan=request.fault_plan,
            **overrides)

        def progress(kind: str, step: int, detail: dict) -> None:
            self._loop.call_soon_threadsafe(handle._emit, kind, step, detail)

        return execute_job(
            request, cfg, segment_steps=self.segment_steps,
            policy=self.recovery,
            driver_factory=self.setup_cache.driver_factory(),
            control=handle.control, progress=progress)

    def _finalize(self, handle: JobHandle, status: JobStatus,
                  queued_s: float, run_s: float, *,
                  outcome=None, error: str | None = None) -> None:
        request = handle.request
        total_s = time.monotonic() - handle.submitted_t
        timings = {"queued_s": queued_s, "run_s": run_s, "total_s": total_s}
        if (request.deadline_s is not None
                and status is JobStatus.COMPLETED
                and total_s > request.deadline_s):
            timings["deadline_overrun_s"] = total_s - request.deadline_s
        result = JobResult(
            job_id=handle.job_id, tenant=handle.tenant, status=status,
            nsteps=request.nsteps,
            case_fingerprint=request.case.fingerprint(),
            timings=timings, error=error)
        if outcome is not None:
            timings["last_step"] = outcome.step
            timings["resumed_from"] = outcome.resumed_from
            result.recovery = outcome.recovery
            if outcome.result is not None:
                result.metrics = job_metrics(outcome.result)
                result.digest = result_digest(outcome.result)
        self.recorder.counter(f"service.jobs.{status.value}")
        if result.recovery.get("recoveries"):
            self.recorder.counter("service.jobs.recoveries",
                                  result.recovery["recoveries"])
        self.admission.release(
            request, handle.decision,
            measured_run_s=run_s if status is JobStatus.COMPLETED else None)
        handle._emit(status.value, timings.get("last_step", 0), {})
        handle._finish(result)

    # -- introspection ---------------------------------------------------

    def metrics_doc(self, meta: dict | None = None) -> dict:
        """A ``repro-telemetry-metrics-v1`` doc of the service's own
        telemetry: job counters plus the cache hit/miss evidence."""
        from repro.telemetry.metrics import metrics_summary
        from repro.telemetry.timeline import merge_timelines

        info = {"service": {"slots": self.slots,
                            "unit_seconds": self.admission.cost.unit_seconds,
                            **self.setup_cache.stats.as_dict()}}
        info.update(meta or {})
        return metrics_summary(merge_timelines([self.recorder]), meta=info)

    def stats(self) -> dict:
        """Live operational snapshot (for `serve` status lines)."""
        by_status: dict[str, int] = {}
        for handle in self.jobs.values():
            key = handle.status.value
            by_status[key] = by_status.get(key, 0) + 1
        return {"jobs": by_status,
                "queued": self._queue.qsize(),
                "backlog_seconds": self.admission.backlog_seconds,
                "setup_cache": self.setup_cache.stats.as_dict(),
                "unit_seconds": self.admission.cost.unit_seconds}
