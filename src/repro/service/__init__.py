"""repro.service: async multi-tenant simulation-as-a-service layer.

Turns the coupled mini-Rig250 driver into a long-lived service:
typed job requests in (:mod:`~repro.service.api`), metric dicts and
telemetry summaries out, multiplexed over bounded worker slots by an
asyncio scheduler (:mod:`~repro.service.scheduler`) with
telemetry-calibrated admission control (:mod:`~repro.service.cost`,
:mod:`~repro.service.admission`), cross-tenant problem-setup
deduplication (:mod:`~repro.service.dedup`), streaming progress and
checkpoint-backed cancel/suspend/resume (:mod:`~repro.service.
executor`), and a reproducible load generator
(:mod:`~repro.service.loadgen`) behind ``benchmarks/bench_service.py``.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.api import (
    AdmissionError,
    EngineCase,
    JobRequest,
    JobResult,
    JobStatus,
    ProgressEvent,
    ServiceError,
    job_metrics,
    result_digest,
)
from repro.service.cost import CostModel
from repro.service.dedup import SetupCache, SetupCacheStats
from repro.service.executor import (
    ExecutionOutcome,
    JobControl,
    execute_job,
    job_checkpoint_dir,
    segment_boundaries,
)
from repro.service.loadgen import (
    LoadSweepConfig,
    measure_service_time,
    run_load_sweep,
    sweep_metrics,
)
from repro.service.scheduler import JobHandle, JobScheduler

__all__ = [
    "AdmissionController", "AdmissionDecision", "AdmissionError",
    "AdmissionPolicy", "CostModel", "EngineCase", "ExecutionOutcome",
    "JobControl", "JobHandle", "JobRequest", "JobResult", "JobScheduler",
    "JobStatus", "LoadSweepConfig", "ProgressEvent", "ServiceError",
    "SetupCache", "SetupCacheStats", "execute_job", "job_checkpoint_dir",
    "job_metrics", "measure_service_time", "result_digest",
    "run_load_sweep", "segment_boundaries", "sweep_metrics",
]
