"""Cross-tenant problem-setup deduplication.

Building a coupled case — meshes, initial problems, partition
layouts, interface routing — is pure in the config fields hashed by
:func:`~repro.coupler.driver.setup_fingerprint`, so the service keeps
one :class:`~repro.coupler.driver.DriverSetup` per fingerprint and
hands it to every driver (first submission builds, every later
identical case adopts). Combined with the existing process-wide plan
cache and on-disk compiled-kernel cache this makes the second tenant's
identical case pay ~zero setup — a claim the cache counters
(``service.setup.hit`` / ``service.setup.miss``, surfaced in the
metrics-doc ``caches`` section) and the service benchmark verify.

Per-fingerprint build locks serialize concurrent first submissions of
the *same* case (one builds, the others wait and adopt) without
serializing builds of different cases.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.coupler.driver import (
    CoupledDriver,
    CoupledRunConfig,
    DriverSetup,
    setup_fingerprint,
)

__all__ = ["SetupCache", "SetupCacheStats"]


@dataclass
class SetupCacheStats:
    """Counter-verified dedup accounting."""

    hits: int = 0
    misses: int = 0
    build_seconds: float = 0.0     #: total spent building on misses
    hit_seconds: float = 0.0       #: total spent serving hits
    #: per-fingerprint build cost, for "second tenant pays < 10%" proofs
    build_cost: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "build_seconds": self.build_seconds,
                "hit_seconds": self.hit_seconds,
                "entries": len(self.build_cost)}


class SetupCache:
    """Shared, thread-safe DriverSetup cache keyed by setup fingerprint.

    ``recorder`` (optional, a
    :class:`~repro.telemetry.recorder.RankRecorder`) receives
    ``service.setup.hit`` / ``service.setup.miss`` counters under the
    cache's own lock, so a service-level metrics doc carries the dedup
    evidence regardless of which worker thread triggered the build.
    """

    def __init__(self, recorder=None) -> None:
        self._entries: dict[str, DriverSetup] = {}
        self._building: dict[str, threading.Lock] = {}
        self._lock = threading.Lock()
        self._recorder = recorder
        self.stats = SetupCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, name: str) -> None:
        if self._recorder is not None:
            self._recorder.counter(name)

    def get(self, cfg: CoupledRunConfig) -> DriverSetup:
        """The (possibly shared) setup for ``cfg``; builds on miss."""
        t0 = time.perf_counter()
        key = setup_fingerprint(cfg)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self.stats.hit_seconds += time.perf_counter() - t0
                self._count("service.setup.hit")
                return entry
            gate = self._building.setdefault(key, threading.Lock())
        with gate:
            # first holder builds; laggards find the entry published
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self.stats.hits += 1
                    self.stats.hit_seconds += time.perf_counter() - t0
                    self._count("service.setup.hit")
                    return entry
            built = CoupledDriver(cfg).setup
            dt = time.perf_counter() - t0
            with self._lock:
                self._entries[key] = built
                self._building.pop(key, None)
                self.stats.misses += 1
                self.stats.build_seconds += dt
                self.stats.build_cost[key] = dt
                self._count("service.setup.miss")
            return built

    def driver_factory(self):
        """A ``cfg -> CoupledDriver`` factory backed by this cache.

        Drop-in for :func:`repro.resilience.run_resilient`'s
        ``driver_factory`` — retries and concurrent tenants all adopt
        the cached setup.
        """
        def factory(cfg: CoupledRunConfig) -> CoupledDriver:
            return CoupledDriver(cfg, shared=self.get(cfg))

        return factory
