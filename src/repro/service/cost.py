"""Telemetry-calibrated job cost estimation for admission control.

The admission controller needs *seconds per job* before the job runs.
The cost model reuses the perf layer's central quantity — seconds per
node update (``unit_seconds``), the same constant
:func:`repro.perf.calibrate.calibrate_unit_seconds` extracts from a
recorded telemetry metrics doc — and multiplies it by the job's work:

    work = total mesh nodes × physical steps × inner iterations

The prior comes from the paper-anchored :data:`~repro.perf.calibrate.
CALIBRATION`; a recorded metrics doc (:meth:`CostModel.from_metrics`)
replaces it with this machine's measured value, and every completed
job refines it online through an exponentially weighted moving
average — so the queue-wait predictions track the machine the service
actually runs on, loaded or not.
"""

from __future__ import annotations

import threading

from repro.service.api import JobRequest

__all__ = ["CostModel"]

#: EWMA weight of each new observation
_DEFAULT_ALPHA = 0.3


class CostModel:
    """Seconds-per-node-update estimator with online refinement."""

    def __init__(self, unit_seconds: float | None = None,
                 alpha: float = _DEFAULT_ALPHA) -> None:
        if unit_seconds is None:
            from repro.perf.calibrate import CALIBRATION

            # the ARCHER2 constant is the paper-anchored prior; one
            # observed job replaces most of it (alpha-weighted)
            unit_seconds = CALIBRATION.unit_seconds["ARCHER2"]
        self.unit_seconds = float(unit_seconds)
        self.alpha = float(alpha)
        self.observations = 0
        self._lock = threading.Lock()

    @classmethod
    def from_metrics(cls, doc: dict, alpha: float = _DEFAULT_ALPHA
                     ) -> "CostModel":
        """Seed from a recorded ``repro-telemetry-metrics-v1`` doc."""
        from repro.perf.calibrate import calibrate_unit_seconds

        cal = calibrate_unit_seconds(doc, machine="service")
        return cls(unit_seconds=cal.unit_seconds["service"], alpha=alpha)

    @staticmethod
    def work_units(request: JobRequest) -> float:
        """Node updates the request will perform (its admission weight)."""
        case = request.case
        return float(case.total_nodes()) * request.nsteps * case.inner_iters

    def estimate_seconds(self, request: JobRequest) -> float:
        """Predicted single-job wall seconds (excluding queueing)."""
        return self.work_units(request) * self.unit_seconds

    def observe(self, request: JobRequest, measured_seconds: float) -> None:
        """Fold one completed job's measured run time into the model."""
        work = self.work_units(request)
        if work <= 0 or measured_seconds <= 0:
            return
        sample = measured_seconds / work
        with self._lock:
            if self.observations == 0:
                # first real measurement beats any prior outright
                self.unit_seconds = sample
            else:
                self.unit_seconds += self.alpha * (sample - self.unit_seconds)
            self.observations += 1
