"""Admission control: decide at submit time, not at meltdown time.

Every request is priced by the :class:`~repro.service.cost.CostModel`
before it may queue. The controller tracks the estimated backlog of
everything admitted-but-unfinished and rejects work the service could
only serve late:

* **tenant quota** — one tenant may not monopolize the queue;
* **backlog cap** — predicted wait (backlog ÷ worker slots) plus the
  job's own run estimate must fit ``max_queue_seconds``;
* **deadline feasibility** — a request whose own deadline is already
  predicted unreachable is refused immediately (the client retries
  later or relaxes the deadline) instead of admitted to certain
  failure.

Rejections are cheap and explicit (:class:`~repro.service.api.
AdmissionError` reason codes), which is what keeps p99 latency of the
*admitted* traffic bounded under overload — the load-generator
benchmark measures exactly this.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.service.api import JobRequest
from repro.service.cost import CostModel

__all__ = ["AdmissionController", "AdmissionDecision", "AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the admission decision."""

    #: reject when predicted wait + run exceeds this (seconds);
    #: ``None`` disables the backlog cap
    max_queue_seconds: float | None = 120.0
    #: max queued+running jobs per tenant; ``None`` disables the quota
    max_jobs_per_tenant: int | None = 8
    #: refuse requests whose deadline is predicted unreachable
    strict_deadlines: bool = True


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict plus the estimates that produced it."""

    admitted: bool
    reason: str                   #: "ok" or a rejection code
    estimated_run_s: float
    estimated_wait_s: float
    detail: str = ""


class AdmissionController:
    """Tracks backlog + tenant quotas; prices and admits requests.

    Thread-safe: ``consider`` (event loop) and ``release`` (worker
    threads) may interleave.
    """

    def __init__(self, slots: int, policy: AdmissionPolicy | None = None,
                 cost: CostModel | None = None) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = slots
        self.policy = policy or AdmissionPolicy()
        self.cost = cost or CostModel()
        self._lock = threading.Lock()
        self._outstanding: dict[str, int] = {}
        self._backlog_s = 0.0

    @property
    def backlog_seconds(self) -> float:
        return self._backlog_s

    def outstanding(self, tenant: str) -> int:
        return self._outstanding.get(tenant, 0)

    def consider(self, request: JobRequest) -> AdmissionDecision:
        """Price the request; admit (reserving backlog) or reject."""
        pol = self.policy
        est = self.cost.estimate_seconds(request)
        with self._lock:
            wait = self._backlog_s / self.slots
            quota = self._outstanding.get(request.tenant, 0)
            if (pol.max_jobs_per_tenant is not None
                    and quota >= pol.max_jobs_per_tenant):
                return AdmissionDecision(
                    False, "tenant-quota", est, wait,
                    f"tenant {request.tenant!r} already has {quota} "
                    f"outstanding jobs (max {pol.max_jobs_per_tenant})")
            if (pol.max_queue_seconds is not None
                    and wait + est > pol.max_queue_seconds):
                return AdmissionDecision(
                    False, "backlog", est, wait,
                    f"predicted completion {wait + est:.1f}s exceeds the "
                    f"{pol.max_queue_seconds:.1f}s queue cap "
                    f"(backlog {self._backlog_s:.1f}s over "
                    f"{self.slots} slots)")
            if (pol.strict_deadlines and request.deadline_s is not None
                    and wait + est > request.deadline_s):
                return AdmissionDecision(
                    False, "deadline-infeasible", est, wait,
                    f"predicted completion {wait + est:.1f}s exceeds the "
                    f"request deadline {request.deadline_s:.1f}s")
            self._outstanding[request.tenant] = quota + 1
            self._backlog_s += est
            return AdmissionDecision(True, "ok", est, wait)

    def release(self, request: JobRequest,
                decision: AdmissionDecision,
                measured_run_s: float | None = None) -> None:
        """Return an admitted job's reservation; feed the cost model."""
        if not decision.admitted:
            return
        with self._lock:
            left = self._outstanding.get(request.tenant, 0) - 1
            if left > 0:
                self._outstanding[request.tenant] = left
            else:
                self._outstanding.pop(request.tenant, None)
            self._backlog_s = max(0.0, self._backlog_s
                                  - decision.estimated_run_s)
        if measured_run_s is not None:
            self.cost.observe(request, measured_run_s)
