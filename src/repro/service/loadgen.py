"""Closed-form load generator for the service benchmark.

Offered load is expressed as a *utilization factor* ρ relative to the
service's measured capacity: a calibration job measures the mean
single-job service time ``S``, then each sweep point submits Poisson
arrivals at rate ``λ = ρ · slots / S`` — ρ = 0.5 is a half-idle
service, ρ = 2.0 is sustained overload where admission control must
shed load to keep the latency of *admitted* jobs bounded. Arrivals
are seeded (``numpy`` Generator), so a sweep is reproducible.

Tenants round-robin over the arrival stream and all submit the same
:class:`~repro.service.api.EngineCase`, which is deliberate: it makes
the sweep double as the dedup proof — only the very first job builds
the problem setup, every other tenant adopts it (counter-verified in
the emitted metrics).

:func:`run_load_sweep` returns per-load throughput and latency
percentiles shaped for ``BENCH_service.json``
(``repro-telemetry-bench-v1``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.service.api import AdmissionError, EngineCase, JobRequest
from repro.service.scheduler import JobScheduler

__all__ = ["LoadSweepConfig", "measure_service_time", "run_load_sweep",
           "sweep_metrics"]


@dataclass
class LoadSweepConfig:
    """One latency/throughput sweep."""

    case: EngineCase = field(default_factory=EngineCase)
    nsteps: int = 4
    #: utilization factors ρ swept (≥3 for the benchmark contract)
    offered_loads: tuple = (0.5, 1.0, 2.0)
    jobs_per_load: int = 12
    tenants: int = 4
    slots: int = 2
    seed: int = 2026
    #: queue cap handed to the admission policy (seconds)
    max_queue_seconds: float = 120.0


async def measure_service_time(scheduler: JobScheduler,
                               case: EngineCase, nsteps: int) -> float:
    """Mean single-job wall seconds, from one calibration job.

    Also warms the setup/plan/kernel caches and seeds the cost model
    with a measured ``unit_seconds``, so admission estimates during
    the sweep reflect this machine rather than the paper prior.
    """
    handle = await scheduler.submit(
        JobRequest(tenant="calibration", case=case, nsteps=nsteps))
    result = await handle.result()
    if not result.ok:
        raise RuntimeError(f"calibration job failed: {result.error}")
    return result.timings["run_s"]


async def _run_one_load(scheduler: JobScheduler, cfg: LoadSweepConfig,
                        rho: float, service_time_s: float,
                        rng: np.random.Generator) -> dict:
    rate = rho * cfg.slots / max(service_time_s, 1e-9)
    gaps = rng.exponential(1.0 / rate, size=cfg.jobs_per_load)
    handles, rejected = [], 0
    t0 = time.monotonic()
    for i in range(cfg.jobs_per_load):
        tenant = f"tenant-{i % cfg.tenants}"
        try:
            handles.append(await scheduler.submit(
                JobRequest(tenant=tenant, case=cfg.case,
                           nsteps=cfg.nsteps)))
        except AdmissionError:
            rejected += 1
        await asyncio.sleep(float(gaps[i]))
    results = await asyncio.gather(*(h.result() for h in handles))
    elapsed = time.monotonic() - t0
    done = [r for r in results if r.ok]
    latencies = np.array([r.timings["total_s"] for r in done]) \
        if done else np.array([0.0])
    return {
        "rho": rho,
        "offered_rate_jobs_s": rate,
        "submitted": cfg.jobs_per_load,
        "admitted": len(handles),
        "rejected": rejected,
        "completed": len(done),
        "throughput_jobs_s": len(done) / elapsed if elapsed > 0 else 0.0,
        "latency_p50_s": float(np.percentile(latencies, 50)),
        "latency_p99_s": float(np.percentile(latencies, 99)),
        "latency_mean_s": float(latencies.mean()),
    }


async def run_load_sweep(cfg: LoadSweepConfig, checkpoint_root) -> dict:
    """Run the full sweep; returns ``{"points": [...], "service": {...}}``."""
    from repro.service.admission import AdmissionPolicy

    rng = np.random.default_rng(cfg.seed)
    async with JobScheduler(
            slots=cfg.slots, checkpoint_root=checkpoint_root,
            policy=AdmissionPolicy(
                max_queue_seconds=cfg.max_queue_seconds,
                max_jobs_per_tenant=None)) as scheduler:
        service_time_s = await measure_service_time(
            scheduler, cfg.case, cfg.nsteps)
        points = []
        for rho in cfg.offered_loads:
            points.append(await _run_one_load(
                scheduler, cfg, rho, service_time_s, rng))
        stats = scheduler.stats()
    return {"service_time_s": service_time_s, "points": points,
            "service": stats}


def sweep_metrics(sweep: dict) -> dict:
    """Flatten a sweep into ``bench_summary``-shaped metrics."""
    metrics = {
        "service_time": {"value": sweep["service_time_s"], "unit": "s"},
    }
    cache = sweep["service"]["setup_cache"]
    metrics["setup_cache_hits"] = {"value": cache["hits"], "unit": "count"}
    metrics["setup_cache_misses"] = {"value": cache["misses"],
                                     "unit": "count"}
    for point in sweep["points"]:
        tag = f"rho_{point['rho']:g}".replace(".", "_")
        metrics[f"{tag}_throughput"] = {
            "value": point["throughput_jobs_s"], "unit": "jobs/s",
            "offered_rate_jobs_s": point["offered_rate_jobs_s"],
            "submitted": point["submitted"],
            "admitted": point["admitted"],
            "rejected": point["rejected"]}
        metrics[f"{tag}_latency_p50"] = {
            "value": point["latency_p50_s"], "unit": "s"}
        metrics[f"{tag}_latency_p99"] = {
            "value": point["latency_p99_s"], "unit": "s"}
    return metrics
