"""Segmented, checkpoint-backed execution of one service job.

A job does not run as one monolithic ``driver.run(nsteps)`` call: the
executor drives it in *segments* of ``segment_steps`` physical steps,
each ending on a committed checkpoint. Between segments it observes
the job's control flags, which is what turns the resilience layer's
primitives into service verbs:

* **progress** — a streamed event per segment boundary;
* **cancel / suspend** — honored at the next boundary; the newest
  committed checkpoint stays on disk, so a suspended job resumes
  bitwise-identically (resubmit with the same ``job_id``);
* **crash recovery** — each segment runs under
  :func:`repro.resilience.run_resilient`, so an injected fault inside
  a segment is retried from the last checkpoint within the retry
  budget and the client never observes an error.

Every job gets its own checkpoint namespace
(:func:`job_checkpoint_dir`: ``root/tenant/job_id``) — concurrent
jobs can never read each other's ``latest_valid_checkpoint``, which
used to be a real collision hazard when two runs shared a
``checkpoint_dir``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.resilience.checkpoint import latest_valid_checkpoint
from repro.resilience.supervisor import RecoveryPolicy, run_resilient
from repro.service.api import JobRequest

__all__ = ["ExecutionOutcome", "JobControl", "execute_job",
           "job_checkpoint_dir", "segment_boundaries"]


def job_checkpoint_dir(root, tenant: str, job_id: str) -> Path:
    """The per-job unique checkpoint namespace ``root/tenant/job_id``.

    Uniqueness is load-bearing: ``latest_valid_checkpoint`` scans a
    directory, so two concurrently driven jobs sharing one would
    restore each other's state.
    """
    return Path(root) / tenant / job_id


def segment_boundaries(start: int, nsteps: int,
                       segment_steps: int) -> list[int]:
    """Step numbers each segment runs to (always ending at ``nsteps``)."""
    if segment_steps < 1:
        raise ValueError(f"segment_steps must be >= 1, got {segment_steps}")
    if start >= nsteps:
        # nothing left to advance; one empty replay regenerates the report
        return [nsteps]
    bounds = list(range(start + segment_steps, nsteps, segment_steps))
    bounds.append(nsteps)
    return bounds


class JobControl:
    """Cancel/suspend flags, set by the scheduler (event-loop thread)
    and polled by the executor (worker thread) at segment boundaries.
    Plain attribute flips — cross-thread visibility is guaranteed by
    the interpreter, and stale reads only delay the stop by one
    segment."""

    def __init__(self) -> None:
        self.cancel = False
        self.suspend = False

    @property
    def stop_requested(self) -> bool:
        return self.cancel or self.suspend


@dataclass
class ExecutionOutcome:
    """What one executor invocation produced."""

    kind: str                 #: completed | suspended | cancelled
    result: object = None     #: CoupledResult when completed
    step: int = 0             #: last committed physical step
    resumed_from: int = 0     #: checkpoint step the job continued from
    run_seconds: float = 0.0  #: wall time spent inside coupled runs
    recovery: dict = field(default_factory=dict)


def _merge_recovery(total: dict, log) -> None:
    if log is None:
        return
    total["attempts"] = total.get("attempts", 0) + log.attempts
    total["recoveries"] = total.get("recoveries", 0) + log.recoveries
    total.setdefault("events", []).extend(e.as_dict() for e in log.events)


def execute_job(request: JobRequest, cfg, *,
                segment_steps: int,
                policy: RecoveryPolicy | None = None,
                driver_factory=None,
                control: JobControl | None = None,
                progress=None) -> ExecutionOutcome:
    """Run one job to completion, suspension or cancellation.

    ``cfg`` must already carry the job's private ``checkpoint_dir``
    and a ``checkpoint_every`` that divides ``segment_steps`` (so
    every segment boundary is a committed checkpoint). ``progress``
    is called as ``progress(kind, step, detail)`` from the worker
    thread; the scheduler marshals it onto the event loop.
    """
    control = control or JobControl()
    policy = policy or RecoveryPolicy()
    notify = progress or (lambda kind, step, detail: None)
    if cfg.checkpoint_dir is None:
        raise ValueError("execute_job needs cfg.checkpoint_dir (per-job)")
    if segment_steps % max(1, cfg.checkpoint_every) != 0:
        raise ValueError(
            f"segment_steps ({segment_steps}) must be a multiple of "
            f"checkpoint_every ({cfg.checkpoint_every}) so segments end "
            f"on committed checkpoints")

    manifest = latest_valid_checkpoint(cfg.checkpoint_dir)
    start = manifest.step if manifest is not None else 0
    outcome = ExecutionOutcome(kind="completed", step=start,
                               resumed_from=start)
    notify("started", start, {"resumed_from": start})
    result = None
    for bound in segment_boundaries(start, request.nsteps, segment_steps):
        if control.stop_requested:
            outcome.kind = "cancelled" if control.cancel else "suspended"
            notify(outcome.kind, outcome.step, {})
            return outcome
        t0 = time.perf_counter()
        result = run_resilient(cfg, bound, policy=policy,
                               driver_factory=driver_factory)
        outcome.run_seconds += time.perf_counter() - t0
        outcome.step = bound
        _merge_recovery(outcome.recovery, result.recovery)
        detail = {}
        if result.recovery is not None and result.recovery.recoveries:
            detail["recoveries"] = result.recovery.recoveries
        notify("progress", bound, detail)
    outcome.result = result
    return outcome
