"""Typed request/response API of the simulation service.

The request shape follows the engine-test-bench exemplars: a
parameterized engine operating point goes in (:class:`EngineCase` —
mesh resolution, row count, shaft speed, inlet state, outlet
pressure), a metric dict plus telemetry summary comes out
(:class:`JobResult`). Requests are namespaced by *tenant*: a tenant's
jobs share an admission quota and a checkpoint namespace, while the
expensive problem-setup products (meshes, partition layouts, interface
routing) are deduplicated *across* tenants by
:func:`~repro.coupler.driver.setup_fingerprint` — the second tenant
submitting an identical case pays ~zero setup.

Determinism contract: ``JobResult.digest`` hashes the run's monitor
payload (station pressures, mid-cut field, unsteadiness, interface
quality, CU accounting). Two digests are equal iff the runs produced
bitwise-identical monitors, so "a retried job is indistinguishable
from an undisturbed one" is a string comparison.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.coupler.driver import CoupledRunConfig, setup_fingerprint
from repro.hydra.gas import FlowState
from repro.hydra.solver import Numerics
from repro.mesh.rig250 import rig250_config

__all__ = [
    "AdmissionError", "EngineCase", "JobRequest", "JobResult", "JobStatus",
    "ProgressEvent", "ServiceError", "job_metrics", "result_digest",
]

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ServiceError(RuntimeError):
    """Base class of service-layer failures."""


class AdmissionError(ServiceError):
    """The admission controller declined a request; carries the reason."""

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason


@dataclass(frozen=True)
class EngineCase:
    """One parameterized engine operating point, service-submittable.

    Maps one-to-one onto the coupled mini-Rig250: resolution and row
    count pick the mesh, ``rpm``/``inlet_ux``/``p_out`` the operating
    point, the rest the execution layout. Frozen so cases are hashable
    and reusable as cache keys.
    """

    nr: int = 3
    nt: int = 12
    nx: int = 4
    rows: int = 2
    steps_per_revolution: int = 64
    rpm: float = 11_000.0
    inlet_ux: float = 0.5
    p_out: float = 1.0
    inner_iters: int = 4
    cfl: float = 0.7
    ranks_per_row: int = 1
    cus_per_interface: int = 1
    search: str = "adt"
    partition_scheme: str = "rcb"
    couple_every: int = 1

    def rig(self):
        return rig250_config(nr=self.nr, nt=self.nt, nx=self.nx,
                             rpm=self.rpm, rows=self.rows,
                             steps_per_revolution=self.steps_per_revolution)

    def total_nodes(self) -> int:
        return self.rig().total_nodes

    def run_config(self, **overrides) -> CoupledRunConfig:
        """The coupled-driver config this case describes.

        ``overrides`` set run-time fields (checkpointing, fault plan,
        transport, guard numerics …) without touching the case
        identity — they never change :meth:`fingerprint`.
        """
        numerics = overrides.pop("numerics", None) or Numerics(
            inner_iters=self.inner_iters, cfl=self.cfl)
        cfg = CoupledRunConfig(
            rig=self.rig(),
            ranks_per_row=self.ranks_per_row,
            cus_per_interface=self.cus_per_interface,
            search=self.search,
            numerics=numerics,
            inlet=FlowState(ux=self.inlet_ux),
            p_out=self.p_out,
            partition_scheme=self.partition_scheme,
            couple_every=self.couple_every,
        )
        for name, value in overrides.items():
            if not hasattr(cfg, name):
                raise TypeError(f"unknown run_config override {name!r}")
            setattr(cfg, name, value)
        return cfg

    def fingerprint(self) -> str:
        """The setup identity shared-cache key (see
        :func:`~repro.coupler.driver.setup_fingerprint`)."""
        return setup_fingerprint(self.run_config())


@dataclass
class JobRequest:
    """One tenant's ask: run ``case`` for ``nsteps`` physical steps."""

    tenant: str
    case: EngineCase
    nsteps: int
    #: smaller runs first; ties broken by submission order
    priority: int = 0
    #: wall-clock budget in seconds from submission. Admission rejects
    #: requests whose predicted wait + run time exceeds it; a job whose
    #: deadline expires while still queued fails fast without running.
    #: A job already running is never killed by its deadline — the
    #: overrun is reported in ``JobResult.timings`` instead.
    deadline_s: float | None = None
    #: resume identity: resubmitting with the ``job_id`` of a suspended
    #: job (same service checkpoint root) continues it from its newest
    #: committed checkpoint instead of starting over
    job_id: str | None = None
    #: deterministic chaos hook (tests, resilience demos): injected
    #: into the run; crashes are retried by the supervisor invisibly
    fault_plan: object | None = None
    #: per-job smpi transport override: "thread", "process", or None =
    #: the scheduler's configured default. Process-transport jobs run
    #: the same supervised recovery (digests equal to thread runs);
    #: injected or real rank-process death stays invisible to clients.
    transport: str | None = None

    def validate(self) -> None:
        if not _TENANT_RE.match(self.tenant or ""):
            raise ValueError(
                f"tenant {self.tenant!r} must match {_TENANT_RE.pattern} "
                f"(it namespaces checkpoint directories)")
        if self.nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {self.nsteps}")
        if self.transport is not None:
            from repro.smpi.transport import TRANSPORTS
            if self.transport not in TRANSPORTS:
                raise ValueError(
                    f"transport {self.transport!r} must be one of "
                    f"{TRANSPORTS} (or None for the service default)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}")
        if self.job_id is not None and not _TENANT_RE.match(self.job_id):
            raise ValueError(
                f"job_id {self.job_id!r} must match {_TENANT_RE.pattern}")


class JobStatus(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    SUSPENDED = "suspended"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.COMPLETED, JobStatus.FAILED,
                        JobStatus.CANCELLED, JobStatus.REJECTED,
                        JobStatus.SUSPENDED)


@dataclass(frozen=True)
class ProgressEvent:
    """One streamed progress notification of one job."""

    job_id: str
    tenant: str
    kind: str          #: queued|started|progress|retrying|suspended|…
    step: int = 0
    nsteps: int = 0
    t: float = 0.0     #: monotonic service clock
    detail: dict = field(default_factory=dict)

    @property
    def fraction(self) -> float:
        return self.step / self.nsteps if self.nsteps else 0.0


@dataclass
class JobResult:
    """What the submitting client gets back."""

    job_id: str
    tenant: str
    status: JobStatus
    nsteps: int
    case_fingerprint: str
    #: headline physics metrics (pressure ratio, interface quality, …)
    metrics: dict = field(default_factory=dict)
    #: bitwise monitor digest (see :func:`result_digest`)
    digest: str = ""
    #: queued_s / setup_s / run_s / total_s (+ deadline overrun if any)
    timings: dict = field(default_factory=dict)
    #: supervisor telemetry: attempts, recoveries, recovery events
    recovery: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status is JobStatus.COMPLETED


def _monitor_payload(result) -> list:
    """The replay-sensitive monitor state of a CoupledResult."""
    return [
        [(row["stations_p"], np.asarray(row["midcut_p"]).tolist(),
          row["unsteadiness"], row["wiggle"],
          row["plane_mdot_in"], row["plane_mdot_out"])
         for row in result.rows],
        [(cu["rounds"], cu["stats"].queries, cu["stats"].comparisons)
         for cu in result.cus],
    ]


def result_digest(result) -> str:
    """Bitwise digest of a coupled run's monitors.

    ``json.dumps`` renders floats with ``repr`` (shortest round-trip),
    so two digests agree iff every monitored float is bit-identical —
    the same payload the resilience CLI proves recovery against.
    """
    blob = json.dumps(_monitor_payload(result), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def job_metrics(result) -> dict:
    """The headline metric dict of a completed coupled run."""
    return {
        "pressure_ratio": result.pressure_ratio(),
        "interface_wiggle": result.interface_wiggle(),
        "interface_mass_mismatch": result.interface_mass_mismatch(),
        "coupler_wait_fraction": result.coupler_wait_fraction(),
        "checkpoint_overhead": result.checkpoint_overhead(),
        "unsteadiness": max((row["unsteadiness"] for row in result.rows),
                            default=0.0),
        "steps": result.nsteps,
        "resumed_from": result.resumed_from,
    }
