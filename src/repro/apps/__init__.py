"""Reference applications built on the repro.op2 DSL.

``airfoil`` is OP2's canonical demonstration code — the paper's Fig. 3
excerpt comes from it — re-implemented here end to end: a cell-centred
2-D Euler solver on an unstructured quad O-grid around a Joukowski
airfoil, with the classic five-kernel structure (save_soln, adt_calc,
res_calc, bres_calc, update).
"""

from repro.apps.airfoil import (AirfoilApp, airfoil_owners, airfoil_problem,
                                make_airfoil_mesh)
from repro.apps.fem import (PoissonApp, exact_peak, fem_owners, fem_problem,
                            make_unit_square)

__all__ = ["AirfoilApp", "airfoil_problem", "airfoil_owners",
           "make_airfoil_mesh",
           "PoissonApp", "exact_peak", "fem_problem", "fem_owners",
           "make_unit_square"]
