"""P1 finite-element Poisson solver — the FEM motif on repro.op2.

OP2 ships a second demo family (*aero*: a nonlinear FEM code) whose
defining pattern differs from airfoil's: loops over *cells* gathering
all of a cell's nodes at once (vector ``idx=ALL`` arguments) and
scattering element-matrix contributions back into nodal residuals.
This module reproduces that motif minimally and verifiably: assemble
and Jacobi-solve the Poisson problem -Lap(u) = f on a triangulated
unit square with homogeneous Dirichlet walls, where the exact solution
is a classical series.

Kernels:

============== =========================================================
``stiffness``  per-triangle: gather 3 node coords + 3 nodal u values
               (ALL), apply the P1 element stiffness, scatter 3
               residual increments (ALL INC) — the FEM data-race motif
``diag``       per-triangle: accumulate the stiffness diagonal (ALL INC)
``jacobi``     per-node: damped Jacobi update, Dirichlet mask applied
``resnorm``    per-node masked residual norm (global reduction)
============== =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import op2


# --------------------------------------------------------------------------
# mesh: structured triangulation of the unit square
# --------------------------------------------------------------------------

@dataclass
class TriMesh:
    """Triangulated unit square."""

    x: np.ndarray           #: (nnode, 2)
    cells: np.ndarray       #: (ncell, 3) node indices
    interior: np.ndarray    #: (nnode,) 1.0 interior / 0.0 Dirichlet wall

    @property
    def nnode(self) -> int:
        return self.x.shape[0]

    @property
    def ncell(self) -> int:
        return self.cells.shape[0]


def make_unit_square(n: int = 17) -> TriMesh:
    """n x n nodes, 2(n-1)^2 right triangles."""
    if n < 3:
        raise ValueError(f"need n >= 3, got {n}")
    xs = np.linspace(0.0, 1.0, n)
    X, Y = np.meshgrid(xs, xs, indexing="ij")
    coords = np.stack([X.ravel(), Y.ravel()], axis=1)

    def nid(i, j):
        return i * n + j

    cells = []
    for i in range(n - 1):
        for j in range(n - 1):
            a, b = nid(i, j), nid(i + 1, j)
            c, d = nid(i + 1, j + 1), nid(i, j + 1)
            cells.append([a, b, c])
            cells.append([a, c, d])
    interior = np.ones(n * n)
    border = (np.isclose(coords[:, 0], 0) | np.isclose(coords[:, 0], 1)
              | np.isclose(coords[:, 1], 0) | np.isclose(coords[:, 1], 1))
    interior[border] = 0.0
    return TriMesh(x=coords, cells=np.array(cells, dtype=np.int64),
                   interior=interior)


# --------------------------------------------------------------------------
# kernels
# --------------------------------------------------------------------------

def stiffness(xs, u, r):
    """Apply the P1 element stiffness: r += K_e u over one triangle."""
    b0 = xs[1, 1] - xs[2, 1]
    b1 = xs[2, 1] - xs[0, 1]
    b2 = xs[0, 1] - xs[1, 1]
    c0 = xs[2, 0] - xs[1, 0]
    c1 = xs[0, 0] - xs[2, 0]
    c2 = xs[1, 0] - xs[0, 0]
    area2 = c2 * b1 - c1 * b2  # 2*area (positive for CCW cells)
    f = 0.25 / (0.5 * area2)
    r[0, 0] += f * ((b0 * b0 + c0 * c0) * u[0, 0]
                    + (b0 * b1 + c0 * c1) * u[1, 0]
                    + (b0 * b2 + c0 * c2) * u[2, 0])
    r[1, 0] += f * ((b1 * b0 + c1 * c0) * u[0, 0]
                    + (b1 * b1 + c1 * c1) * u[1, 0]
                    + (b1 * b2 + c1 * c2) * u[2, 0])
    r[2, 0] += f * ((b2 * b0 + c2 * c0) * u[0, 0]
                    + (b2 * b1 + c2 * c1) * u[1, 0]
                    + (b2 * b2 + c2 * c2) * u[2, 0])


def diag(xs, d):
    """Accumulate the stiffness diagonal of one triangle."""
    b0 = xs[1, 1] - xs[2, 1]
    b1 = xs[2, 1] - xs[0, 1]
    b2 = xs[0, 1] - xs[1, 1]
    c0 = xs[2, 0] - xs[1, 0]
    c1 = xs[0, 0] - xs[2, 0]
    c2 = xs[1, 0] - xs[0, 0]
    area2 = c2 * b1 - c1 * b2
    f = 0.25 / (0.5 * area2)
    d[0, 0] += f * (b0 * b0 + c0 * c0)
    d[1, 0] += f * (b1 * b1 + c1 * c1)
    d[2, 0] += f * (b2 * b2 + c2 * c2)


def load(xs, rhs, fsrc):
    """Lumped load vector: f * area/3 to each corner."""
    area2 = ((xs[1, 0] - xs[0, 0]) * (xs[2, 1] - xs[0, 1])
             - (xs[2, 0] - xs[0, 0]) * (xs[1, 1] - xs[0, 1]))
    w = fsrc[0] * 0.5 * area2 / 3.0
    rhs[0, 0] += w
    rhs[1, 0] += w
    rhs[2, 0] += w


def jacobi(r, rhs, d, mask, u, omega):
    """Damped Jacobi step on interior nodes; reset the residual."""
    du = omega[0] * (rhs[0] - r[0]) / d[0]
    u[0] = u[0] + mask[0] * du
    r[0] = 0.0


def resnorm(r, rhs, mask, norm):
    e = mask[0] * (rhs[0] - r[0])
    norm[0] += e * e


def fem_problem(mesh: TriMesh):
    """The FEM declaration as a distributable GlobalProblem."""
    from repro.op2.distribute import GlobalProblem

    gp = GlobalProblem()
    gp.add_set("nodes", mesh.nnode)
    gp.add_set("cells", mesh.ncell)
    gp.add_map("pcell", "cells", "nodes", mesh.cells)
    gp.add_dat("x", "nodes", mesh.x)
    for name in ("u", "r", "rhs", "d"):
        gp.add_dat(name, "nodes", np.zeros(mesh.nnode))
    gp.add_dat("mask", "nodes", mesh.interior)
    return gp


def fem_owners(mesh: TriMesh, nranks: int) -> dict:
    """Owner arrays (RCB on node coordinates; cells follow node 0)."""
    from repro.mesh.partition import partition_rcb

    node_owner = partition_rcb(mesh.x, nranks)
    return {"nodes": node_owner, "cells": node_owner[mesh.cells[:, 0]]}


class PoissonApp:
    """Assembled FEM Poisson solver (the aero-style vector-arg app)."""

    def __init__(self, mesh: TriMesh, source: float = 1.0,
                 backend: str | None = None, local=None) -> None:
        from repro.op2.distribute import build_serial_problem

        self.mesh = mesh
        self.backend = backend
        if local is None:
            local = build_serial_problem(fem_problem(mesh))
        self.local = local
        self.nodes = local.sets["nodes"]
        self.cells = local.sets["cells"]
        self.pcell = local.maps["pcell"]
        self.x = local.dats["x"]
        self.u = local.dats["u"]
        self.r = local.dats["r"]
        self.rhs = local.dats["rhs"]
        self.d = local.dats["d"]
        self.mask = local.dats["mask"]
        self.g_omega = op2.Global(1, 0.8, "omega")
        self.g_src = op2.Global(1, source, "fsrc")

        self.k_stiff = op2.Kernel(stiffness)
        self.k_diag = op2.Kernel(diag)
        self.k_load = op2.Kernel(load)
        self.k_jacobi = op2.Kernel(jacobi)
        self.k_norm = op2.Kernel(resnorm)

        # one-time assembly of the diagonal and load vector
        op2.par_loop(self.k_diag, self.cells,
                     self.x.arg(op2.READ, self.pcell, op2.ALL),
                     self.d.arg(op2.INC, self.pcell, op2.ALL),
                     backend=backend)
        op2.par_loop(self.k_load, self.cells,
                     self.x.arg(op2.READ, self.pcell, op2.ALL),
                     self.rhs.arg(op2.INC, self.pcell, op2.ALL),
                     self.g_src.arg(op2.READ), backend=backend)

    def iterate(self, niter: int) -> list[float]:
        """Damped Jacobi iterations; returns the residual-norm history."""
        history = []
        for _ in range(niter):
            op2.par_loop(self.k_stiff, self.cells,
                         self.x.arg(op2.READ, self.pcell, op2.ALL),
                         self.u.arg(op2.READ, self.pcell, op2.ALL),
                         self.r.arg(op2.INC, self.pcell, op2.ALL),
                         backend=self.backend)
            norm = op2.Global(1, 0.0, "norm")
            op2.par_loop(self.k_norm, self.nodes,
                         self.r.arg(op2.READ), self.rhs.arg(op2.READ),
                         self.mask.arg(op2.READ), norm.arg(op2.INC),
                         backend=self.backend)
            op2.par_loop(self.k_jacobi, self.nodes,
                         self.r.arg(op2.RW), self.rhs.arg(op2.READ),
                         self.d.arg(op2.READ), self.mask.arg(op2.READ),
                         self.u.arg(op2.RW), self.g_omega.arg(op2.READ),
                         backend=self.backend)
            history.append(float(np.sqrt(norm.value)))
        return history

    @classmethod
    def from_local(cls, mesh: TriMesh, local, source: float = 1.0,
                   backend: str | None = None) -> "PoissonApp":
        """Build on an already-distributed LocalProblem (one rank)."""
        return cls(mesh, source=source, backend=backend, local=local)

    def solution(self) -> np.ndarray:
        return self.u.data_ro[:, 0].copy()


def exact_peak(terms: int = 60) -> float:
    """max u of -Lap(u) = 1 on the unit square, Dirichlet 0 (series)."""
    total = 0.0
    for m in range(1, terms, 2):
        for k in range(1, terms, 2):
            total += (16.0 / (np.pi**4 * m * k * (m * m + k * k))
                      * np.sin(m * np.pi / 2) * np.sin(k * np.pi / 2))
    return total
