"""The OP2 *airfoil* benchmark on repro.op2.

A faithful port of OP2's canonical demo (the nonlinear 2-D Euler
solver the paper's Fig. 3 excerpt comes from): cell-centred finite
volumes on an unstructured quadrilateral mesh, with the classic
five-kernel structure —

========== ==============================================================
save_soln  copy the cell state into the RK base
adt_calc   per-cell stable time step from the 4 corner nodes
res_calc   interior-edge flux: 2 nodes + both neighbour cells, indirect
           increments into both residuals (the data-race motif)
bres_calc  boundary-edge flux: airfoil wall (reflective) vs farfield
update     RK update + RMS reduction
========== ==============================================================

The mesh is an O-grid around a Joukowski airfoil (the conformal map
``zeta = z + c^2/z`` of circles to airfoil shapes), built as plain
unstructured sets/maps — node coordinates, edge->node, edge->cell,
cell->node — exactly the declaration pattern of the paper's Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import op2

GAM = 1.4
GM1 = GAM - 1.0


# --------------------------------------------------------------------------
# mesh generation
# --------------------------------------------------------------------------

@dataclass
class AirfoilMesh:
    """Unstructured O-grid around a Joukowski airfoil."""

    x: np.ndarray          #: (nnode, 2) node coordinates
    cell_nodes: np.ndarray  #: (ncell, 4)
    edge_nodes: np.ndarray  #: (nedge, 2) interior edges
    edge_cells: np.ndarray  #: (nedge, 2) left/right cells (n points l->r)
    bedge_nodes: np.ndarray  #: (nbedge, 2)
    bedge_cell: np.ndarray   #: (nbedge,)
    bound: np.ndarray        #: (nbedge,) 1 = airfoil wall, 2 = farfield

    @property
    def nnode(self) -> int:
        return self.x.shape[0]

    @property
    def ncell(self) -> int:
        return self.cell_nodes.shape[0]

    @property
    def nedge(self) -> int:
        return self.edge_nodes.shape[0]

    @property
    def nbedge(self) -> int:
        return self.bedge_nodes.shape[0]


def make_airfoil_mesh(ni: int = 64, nj: int = 16, r_far: float = 10.0,
                      camber: float = 0.08, thickness: float = 0.1
                      ) -> AirfoilMesh:
    """O-grid around a Joukowski airfoil.

    Circles of growing radius around the mapping's critical point are
    pushed through ``zeta = z + 1/z``; the innermost circle maps to the
    airfoil surface, the outermost approximates a farfield circle.
    ``ni`` points wrap the airfoil (periodic), ``nj`` layers go from
    the surface to the farfield with geometric stretching.
    """
    if ni < 8 or nj < 3:
        raise ValueError(f"need ni >= 8 and nj >= 3, got ni={ni}, nj={nj}")
    # circle center offset controls thickness (real) and camber (imag)
    mu = complex(-thickness, camber)
    r0 = abs(1.0 - mu)  # circle through the trailing-edge critical point z=1
    theta = 2.0 * np.pi * np.arange(ni) / ni
    # geometric radial stretching from the surface to the farfield
    stretch = np.geomspace(1.0, r_far / r0, nj)
    nodes = np.empty((nj, ni, 2))
    for j, s in enumerate(stretch):
        z = mu + r0 * s * np.exp(1j * theta)
        zeta = z + 1.0 / z
        nodes[j, :, 0] = zeta.real
        nodes[j, :, 1] = zeta.imag
    x = nodes.reshape(nj * ni, 2)

    def nid(j, i):
        return j * ni + (i % ni)

    def cid(j, i):
        return j * ni + (i % ni)

    ncell_j = nj - 1
    cell_nodes = np.empty((ncell_j * ni, 4), dtype=np.int64)
    for j in range(ncell_j):
        for i in range(ni):
            cell_nodes[cid(j, i)] = [nid(j, i), nid(j, i + 1),
                                     nid(j + 1, i + 1), nid(j + 1, i)]

    centers = x[cell_nodes].mean(axis=1)

    edge_nodes: list[list[int]] = []
    edge_cells: list[list[int]] = []
    bedge_nodes: list[list[int]] = []
    bedge_cell: list[int] = []
    bound: list[int] = []

    def orient(n1: int, n2: int, cl: int, cr: int) -> tuple[int, int]:
        """Order cells to match the kernels' normal convention.

        res_calc uses m = (dy, -dx) with dx = x1-x2, dy = y1-y2 — the
        +90° rotation of the edge vector n1->n2 — as cell 1's *outward*
        normal, so cell 1 must sit on the side m points away from.
        """
        d = x[n2] - x[n1]
        m = np.array([-d[1], d[0]])
        if np.dot(m, centers[cr] - centers[cl]) < 0.0:
            return cr, cl
        return cl, cr

    # radial edges: separate circumferential neighbours (all interior)
    for j in range(ncell_j):
        for i in range(ni):
            n1, n2 = nid(j, i), nid(j + 1, i)
            cl, cr = orient(n1, n2, cid(j, i - 1), cid(j, i))
            edge_nodes.append([n1, n2])
            edge_cells.append([cl, cr])
    # circumferential edges: interior between radial layers
    for j in range(1, ncell_j):
        for i in range(ni):
            n1, n2 = nid(j, i), nid(j, i + 1)
            cl, cr = orient(n1, n2, cid(j - 1, i), cid(j, i))
            edge_nodes.append([n1, n2])
            edge_cells.append([cl, cr])
    # boundaries: airfoil surface (j=0) and farfield (j=nj-1). The
    # kernels use m = rotate(n1->n2, +90°) as the *outward* normal of
    # the attached cell: the CCW-traversed inner ring already points
    # out of the fluid (into the airfoil); the outer ring must be
    # traversed clockwise so m points out of the farfield.
    for i in range(ni):
        n1, n2 = nid(0, i), nid(0, i + 1)
        c = cid(0, i)
        d = x[n2] - x[n1]
        m = np.array([-d[1], d[0]])
        if np.dot(m, centers[c] - 0.5 * (x[n1] + x[n2])) > 0.0:
            n1, n2 = n2, n1  # flip so m points away from the cell
        bedge_nodes.append([n1, n2])
        bedge_cell.append(c)
        bound.append(1)
    for i in range(ni):
        n1, n2 = nid(nj - 1, i), nid(nj - 1, i + 1)
        c = cid(ncell_j - 1, i)
        d = x[n2] - x[n1]
        m = np.array([-d[1], d[0]])
        if np.dot(m, centers[c] - 0.5 * (x[n1] + x[n2])) > 0.0:
            n1, n2 = n2, n1
        bedge_nodes.append([n1, n2])
        bedge_cell.append(c)
        bound.append(2)

    return AirfoilMesh(
        x=x,
        cell_nodes=cell_nodes,
        edge_nodes=np.array(edge_nodes, dtype=np.int64),
        edge_cells=np.array(edge_cells, dtype=np.int64),
        bedge_nodes=np.array(bedge_nodes, dtype=np.int64),
        bedge_cell=np.array(bedge_cell, dtype=np.int64),
        bound=np.array(bound, dtype=np.float64),
    )


# --------------------------------------------------------------------------
# the five kernels (adapted to the restricted kernel language)
# --------------------------------------------------------------------------

def save_soln(q, qold):
    for i in range(4):
        qold[i] = q[i]


def adt_calc(x1, x2, x3, x4, q, adt, cfl):
    """Stable time-step bound of one cell from its 4 corner nodes."""
    ri = 1.0 / q[0]
    u = ri * q[1]
    v = ri * q[2]
    # c^2 = gam * p / rho = 1.4 * 0.4 * (E - KE) / rho
    c = sqrt(0.56 * ri * (q[3] - 0.5 * ri * (q[1] * q[1] + q[2] * q[2])))  # noqa: F821,E501
    d1 = fabs((u * (x2[1] - x1[1]) - v * (x2[0] - x1[0]))) + c * sqrt((x2[0] - x1[0]) * (x2[0] - x1[0]) + (x2[1] - x1[1]) * (x2[1] - x1[1]))  # noqa: F821,E501
    d2 = fabs((u * (x3[1] - x2[1]) - v * (x3[0] - x2[0]))) + c * sqrt((x3[0] - x2[0]) * (x3[0] - x2[0]) + (x3[1] - x2[1]) * (x3[1] - x2[1]))  # noqa: F821,E501
    d3 = fabs((u * (x4[1] - x3[1]) - v * (x4[0] - x3[0]))) + c * sqrt((x4[0] - x3[0]) * (x4[0] - x3[0]) + (x4[1] - x3[1]) * (x4[1] - x3[1]))  # noqa: F821,E501
    d4 = fabs((u * (x1[1] - x4[1]) - v * (x1[0] - x4[0]))) + c * sqrt((x1[0] - x4[0]) * (x1[0] - x4[0]) + (x1[1] - x4[1]) * (x1[1] - x4[1]))  # noqa: F821,E501
    adt[0] = (d1 + d2 + d3 + d4) / cfl[0]


def res_calc(x1, x2, q1, q2, adt1, adt2, res1, res2):
    """Interior edge flux (the paper's Fig. 3 loop)."""
    dx = x1[0] - x2[0]
    dy = x1[1] - x2[1]
    ri1 = 1.0 / q1[0]
    p1 = 0.4 * (q1[3] - 0.5 * ri1 * (q1[1] * q1[1] + q1[2] * q1[2]))
    vol1 = ri1 * (q1[1] * dy - q1[2] * dx)
    ri2 = 1.0 / q2[0]
    p2 = 0.4 * (q2[3] - 0.5 * ri2 * (q2[1] * q2[1] + q2[2] * q2[2]))
    vol2 = ri2 * (q2[1] * dy - q2[2] * dx)
    mu = 0.5 * (adt1[0] + adt2[0]) * 0.05
    f = 0.5 * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0])
    res1[0] += f
    res2[0] -= f
    f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) \
        + mu * (q1[1] - q2[1])
    res1[1] += f
    res2[1] -= f
    f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) \
        + mu * (q1[2] - q2[2])
    res1[2] += f
    res2[2] -= f
    f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) \
        + mu * (q1[3] - q2[3])
    res1[3] += f
    res2[3] -= f


def bres_calc(x1, x2, q1, adt1, res1, bound, qinf):
    """Boundary edge flux: reflective wall (bound=1) or farfield (2)."""
    dx = x1[0] - x2[0]
    dy = x1[1] - x2[1]
    ri = 1.0 / q1[0]
    p1 = 0.4 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]))
    wall = 1.0 if bound[0] < 1.5 else 0.0
    # wall: only pressure acts
    wall_f1 = p1 * dy
    wall_f2 = -p1 * dx
    # farfield: free-stream exchange with dissipation
    vol1 = ri * (q1[1] * dy - q1[2] * dx)
    ri2 = 1.0 / qinf[0]
    p2 = 0.4 * (qinf[3] - 0.5 * ri2 * (qinf[1] * qinf[1] + qinf[2] * qinf[2]))
    vol2 = ri2 * (qinf[1] * dy - qinf[2] * dx)
    mu = adt1[0] * 0.05
    far_f0 = 0.5 * (vol1 * q1[0] + vol2 * qinf[0]) + mu * (q1[0] - qinf[0])
    far_f1 = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * qinf[1] + p2 * dy) \
        + mu * (q1[1] - qinf[1])
    far_f2 = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * qinf[2] - p2 * dx) \
        + mu * (q1[2] - qinf[2])
    far_f3 = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (qinf[3] + p2)) \
        + mu * (q1[3] - qinf[3])
    res1[0] += (1.0 - wall) * far_f0
    res1[1] += wall * wall_f1 + (1.0 - wall) * far_f1
    res1[2] += wall * wall_f2 + (1.0 - wall) * far_f2
    res1[3] += (1.0 - wall) * far_f3


def update(qold, q, res, adt, rms):
    """RK update towards steady state + RMS change reduction."""
    adti = 1.0 / adt[0]
    for i in range(4):
        ddt = adti * res[i]
        q[i] = qold[i] - ddt
        res[i] = 0.0
        rms[0] += ddt * ddt


# --------------------------------------------------------------------------
# the application
# --------------------------------------------------------------------------

def freestream(mach: float) -> np.ndarray:
    """Conserved free-stream state at the given Mach number."""
    p_inf = 1.0
    r_inf = 1.0
    c_inf = np.sqrt(GAM * p_inf / r_inf)
    u_inf = mach * c_inf
    e_inf = p_inf / GM1 + 0.5 * r_inf * u_inf**2
    return np.array([r_inf, r_inf * u_inf, 0.0, e_inf])


def airfoil_problem(mesh: AirfoilMesh, mach: float = 0.4):
    """The airfoil declaration as a distributable GlobalProblem."""
    from repro.op2.distribute import GlobalProblem

    gp = GlobalProblem()
    gp.add_set("nodes", mesh.nnode)
    gp.add_set("edges", mesh.nedge)
    gp.add_set("bedges", mesh.nbedge)
    gp.add_set("cells", mesh.ncell)
    gp.add_map("pedge", "edges", "nodes", mesh.edge_nodes)
    gp.add_map("pecell", "edges", "cells", mesh.edge_cells)
    gp.add_map("pbedge", "bedges", "nodes", mesh.bedge_nodes)
    gp.add_map("pbecell", "bedges", "cells", mesh.bedge_cell.reshape(-1, 1))
    gp.add_map("pcell", "cells", "nodes", mesh.cell_nodes)
    gp.add_dat("x", "nodes", mesh.x)
    qinf = freestream(mach)
    gp.add_dat("q", "cells", np.tile(qinf, (mesh.ncell, 1)))
    gp.add_dat("qold", "cells", np.zeros((mesh.ncell, 4)))
    gp.add_dat("res", "cells", np.zeros((mesh.ncell, 4)))
    gp.add_dat("adt", "cells", np.zeros((mesh.ncell, 1)))
    gp.add_dat("bound", "bedges", mesh.bound)
    return gp


def airfoil_owners(mesh: AirfoilMesh, nranks: int) -> dict:
    """Owner arrays for every airfoil set (RCB on cell centers)."""
    from repro.mesh.partition import partition_rcb
    from repro.op2.distribute import derive_owner_from_map

    centers = mesh.x[mesh.cell_nodes].mean(axis=1)
    cell_owner = partition_rcb(centers, nranks)
    node_owner = np.empty(mesh.nnode, dtype=np.int64)
    # nodes inherit the owner of some adjacent cell
    for c in range(mesh.ncell):
        node_owner[mesh.cell_nodes[c]] = cell_owner[c]
    return {
        "cells": cell_owner,
        "nodes": node_owner,
        "edges": cell_owner[mesh.edge_cells[:, 0]],
        "bedges": cell_owner[mesh.bedge_cell],
    }


class AirfoilApp:
    """The assembled airfoil solver (OP2's demo app, our DSL).

    Construct directly from a mesh for serial runs, or via
    :meth:`from_local` with a distributed LocalProblem for MPI runs.
    """

    def __init__(self, mesh: AirfoilMesh, mach: float = 0.4,
                 cfl: float = 0.9, backend: str | None = None,
                 local=None) -> None:
        from repro.op2.distribute import build_serial_problem

        self.mesh = mesh
        self.backend = backend
        if local is None:
            local = build_serial_problem(airfoil_problem(mesh, mach))
        self.local = local
        self.nodes = local.sets["nodes"]
        self.edges = local.sets["edges"]
        self.bedges = local.sets["bedges"]
        self.cells = local.sets["cells"]
        self.pedge = local.maps["pedge"]
        self.pecell = local.maps["pecell"]
        self.pbedge = local.maps["pbedge"]
        self.pbecell = local.maps["pbecell"]
        self.pcell = local.maps["pcell"]
        self.x = local.dats["x"]
        self.q = local.dats["q"]
        self.qold = local.dats["qold"]
        self.res = local.dats["res"]
        self.adt = local.dats["adt"]
        self.bound = local.dats["bound"]
        self.g_qinf = op2.Global(4, freestream(mach), "qinf")
        self.g_cfl = op2.Global(1, cfl, "cflnum")

        self.k_save = op2.Kernel(save_soln)
        self.k_adt = op2.Kernel(adt_calc)
        self.k_res = op2.Kernel(res_calc)
        self.k_bres = op2.Kernel(bres_calc)
        self.k_update = op2.Kernel(update)

    @classmethod
    def from_local(cls, mesh: AirfoilMesh, local, mach: float = 0.4,
                   cfl: float = 0.9, backend: str | None = None
                   ) -> "AirfoilApp":
        """Build on an already-distributed LocalProblem (one rank)."""
        return cls(mesh, mach=mach, cfl=cfl, backend=backend, local=local)

    def iterate(self, niter: int, rk_stages: int = 2) -> list[float]:
        """Run ``niter`` pseudo-time iterations; returns the RMS history.

        Collective in distributed runs (the RMS reduction allreduces).
        """
        b = self.backend
        ncell_global = self.mesh.ncell
        history: list[float] = []
        for _ in range(niter):
            op2.par_loop(self.k_save, self.cells,
                         self.q.arg(op2.READ), self.qold.arg(op2.WRITE),
                         backend=b)
            rms = op2.Global(1, 0.0, "rms")
            for _stage in range(rk_stages):
                op2.par_loop(self.k_adt, self.cells,
                             self.x.arg(op2.READ, self.pcell, 0),
                             self.x.arg(op2.READ, self.pcell, 1),
                             self.x.arg(op2.READ, self.pcell, 2),
                             self.x.arg(op2.READ, self.pcell, 3),
                             self.q.arg(op2.READ), self.adt.arg(op2.WRITE),
                             self.g_cfl.arg(op2.READ), backend=b)
                op2.par_loop(self.k_res, self.edges,
                             self.x.arg(op2.READ, self.pedge, 0),
                             self.x.arg(op2.READ, self.pedge, 1),
                             self.q.arg(op2.READ, self.pecell, 0),
                             self.q.arg(op2.READ, self.pecell, 1),
                             self.adt.arg(op2.READ, self.pecell, 0),
                             self.adt.arg(op2.READ, self.pecell, 1),
                             self.res.arg(op2.INC, self.pecell, 0),
                             self.res.arg(op2.INC, self.pecell, 1),
                             backend=b)
                op2.par_loop(self.k_bres, self.bedges,
                             self.x.arg(op2.READ, self.pbedge, 0),
                             self.x.arg(op2.READ, self.pbedge, 1),
                             self.q.arg(op2.READ, self.pbecell, 0),
                             self.adt.arg(op2.READ, self.pbecell, 0),
                             self.res.arg(op2.INC, self.pbecell, 0),
                             self.bound.arg(op2.READ),
                             self.g_qinf.arg(op2.READ), backend=b)
                op2.par_loop(self.k_update, self.cells,
                             self.qold.arg(op2.READ), self.q.arg(op2.WRITE),
                             self.res.arg(op2.RW), self.adt.arg(op2.READ),
                             rms.arg(op2.INC), backend=b)
            history.append(float(np.sqrt(rms.value / ncell_global)))
        return history

    def pressure(self) -> np.ndarray:
        """Static pressure per cell."""
        q = self.q.data_ro
        return GM1 * (q[:, 3] - 0.5 * (q[:, 1]**2 + q[:, 2]**2) / q[:, 0])

    def surface_pressure(self) -> np.ndarray:
        """Pressure on the airfoil-surface cells (ordered around)."""
        wall = self.mesh.bound < 1.5
        return self.pressure()[self.mesh.bedge_cell[wall]]
